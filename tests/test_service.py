"""Tests for the solver service: protocol, cache, warm pool, front door.

The end-to-end tests start a real :class:`~repro.service.server.ServiceServer`
on an ephemeral port inside a background thread (its own asyncio loop) and
talk to it with the blocking :class:`~repro.service.client.ServiceClient` —
the same path ``hqs-serve`` / ``hqs-client`` take, minus argparse.  Worker
pools are forked in the test's main thread *before* the loop starts,
matching the fork-before-threads discipline of :func:`repro.service.server.main`.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro import durable
from repro.formula.dqdimacs import parse_dqdimacs, write_dqdimacs
from repro.pec.families import make_adder, make_comp
from repro.core.checkpoint import formula_fingerprint
from repro.service import (
    DEFAULT_PORT,
    ProtocolError,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SolverService,
    WorkerPool,
    decode_message,
    encode_message,
)
from repro.service.client import ServiceError
from repro.service.protocol import solve_request, validate_request


def family_text(size=4, boxes=2, buggy=True, seed=5):
    return write_dqdimacs(make_adder(size, boxes, buggy, seed=seed).formula)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_round_trip(self):
        message = solve_request("p cnf 0 0\n", family="adder", timeout=1.5)
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_message(line) == message

    def test_decode_rejects_garbage(self):
        for bad in (b"not json\n", b"[1, 2]\n", b"\xff\xfe\n"):
            with pytest.raises(ProtocolError):
                decode_message(bad)

    def test_validate_checks_op(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError):
            validate_request({})

    def test_validate_solve_needs_formula(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "solve"})
        with pytest.raises(ProtocolError):
            validate_request({"op": "solve", "formula": ""})
        with pytest.raises(ProtocolError):
            validate_request({"op": "solve", "formula": "p", "timeout": -1})
        assert validate_request({"op": "solve", "formula": "p cnf 0 0"}) == "solve"

    def test_default_port_is_paper_year(self):
        assert DEFAULT_PORT == 20150  # DATE 2015


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup("fp") is None
        assert cache.store("fp", {"status": "UNSAT", "runtime": 0.1})
        hit = cache.lookup("fp")
        assert hit["status"] == "UNSAT" and hit["cache"] == "hit"
        assert cache.stats.memory_hits == 1 and cache.stats.misses == 1

    def test_only_definitive_results_cached(self):
        cache = ResultCache(capacity=4)
        for status in ("UNKNOWN", "TIMEOUT", "ERROR"):
            assert not cache.store("fp-" + status, {"status": status})
            assert cache.lookup("fp-" + status) is None
        assert cache.stats.uncacheable == 3

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.store("a", {"status": "SAT"})
        cache.store("b", {"status": "SAT"})
        cache.lookup("a")  # refresh a -> b is now least recent
        cache.store("c", {"status": "SAT"})
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_disk_tier_survives_eviction(self, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path))
        cache.store("a", {"status": "SAT", "runtime": 0.5})
        cache.store("b", {"status": "UNSAT"})  # evicts a from memory
        assert "a" not in cache
        hit = cache.lookup("a")
        assert hit is not None and hit["status"] == "SAT"
        assert hit["cache"] == "disk"
        assert cache.stats.disk_hits == 1
        # the disk hit promoted it back into memory
        assert cache.lookup("a")["cache"] == "hit"

    def test_checkpoint_paths(self, tmp_path):
        memory_only = ResultCache(capacity=2)
        assert memory_only.checkpoint_path("fp") is None
        cache = ResultCache(capacity=2, disk_dir=str(tmp_path))
        path = cache.checkpoint_path("fp")
        assert path is not None and not cache.has_checkpoint("fp")
        with open(path, "w") as handle:
            handle.write("snapshot")
        assert cache.has_checkpoint("fp")


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------

class TestWorkerPool:
    def test_solves_and_answers(self):
        with WorkerPool(size=1) as pool:
            payload = pool.solve(family_text(buggy=True), family="adder")
            assert payload["status"] == "UNSAT"
            payload = pool.solve(family_text(buggy=False), family="adder")
            assert payload["status"] == "SAT"

    def test_warm_session_reuses_learned_clauses(self):
        """Two same-family solves: the second inherits learned clauses."""
        with WorkerPool(size=1) as pool:
            first = pool.solve(family_text(seed=5), family="adder")
            second = pool.solve(family_text(seed=7), family="adder")
        assert first["status"] == "UNSAT" and second["status"] == "UNSAT"
        assert first["warm"] == 0 and second["warm"] == 1
        assert first["worker_pid"] == second["worker_pid"]
        assert first["stats"]["sat_warm_learnts"] == 0
        assert second["stats"]["sat_warm_learnts"] > 0
        assert second["stats"]["sat_session_shared"] == 1.0

    def test_family_routing_is_stable(self):
        with WorkerPool(size=3) as pool:
            assert pool.route("adder") == pool.route("adder")
            indices = {pool.route(None) for _ in range(6)}
            assert indices == {0, 1, 2}  # round-robin covers the pool

    def test_stalled_worker_is_hard_killed_and_recycled(self):
        with WorkerPool(size=1, grace=0.2) as pool:
            worker_before = pool._workers[0].process.pid
            payload = pool._request(
                0, {"op": "stall", "seconds": 30.0},
                time.monotonic() + 0.3,
            )
            assert payload["status"] == "TIMEOUT"
            assert payload["stats"]["hard_timeout"] == 1.0
            assert pool.hard_kills == 1
            # the slot was respawned and serves again
            after = pool.solve(family_text(), family="adder")
            assert after["status"] == "UNSAT"
            assert after["worker_pid"] != worker_before

    def test_dead_worker_is_recycled(self):
        with WorkerPool(size=1) as pool:
            pool._workers[0].process.kill()
            payload = pool.solve(family_text(), family="adder")
            assert payload["status"] == "ERROR"
            assert pool.worker_deaths == 1
            assert pool.solve(family_text(), family="adder")["status"] == "UNSAT"

    def test_bad_formula_is_contained(self):
        with WorkerPool(size=1) as pool:
            payload = pool.solve("this is not dqdimacs", family="x")
            assert payload["status"] == "ERROR"
            assert "Traceback" in payload["error"]
            # worker survived the exception
            assert pool.solve(family_text(), family="x")["status"] == "UNSAT"

    def test_shutdown_drains_idle_workers(self):
        pool = WorkerPool(size=2)
        pool.solve(family_text(), family="adder")
        summary = pool.shutdown(drain_timeout=5.0)
        assert summary == {"drained": 2, "killed": 0}
        assert all(not w.process.is_alive() for w in pool._workers)

    def test_checkpoint_resume_across_requests(self, tmp_path):
        """A budget-limited solve leaves a checkpoint; the retry resumes."""
        formula = write_dqdimacs(
            make_comp(6, 2, buggy=True, seed=11).formula
        )
        ckpt = str(tmp_path / "resume.ckpt")
        with WorkerPool(size=1) as pool:
            first = pool.solve(formula, family="comp",
                               node_limit=800, checkpoint=ckpt)
            assert first["status"] == "UNKNOWN"
            assert first["stats"].get("checkpoint_writes", 0) >= 1
            second = pool.solve(formula, family="comp", checkpoint=ckpt)
            assert second["status"] in ("SAT", "UNSAT")
            assert second["stats"].get("checkpoint_resumed") == 1.0


# ----------------------------------------------------------------------
# in-flight deduplication (transport-independent layer)
# ----------------------------------------------------------------------

class _BlockingPool:
    """Pool stand-in whose solve() blocks until released (deterministic
    overlap for the coalescing test)."""

    size = 2

    def __init__(self):
        self.calls = 0
        self.release = threading.Event()

    def solve(self, formula, family=None, time_limit=None,
              node_limit=None, checkpoint=None):
        self.calls += 1
        assert self.release.wait(10.0)
        return {"status": "UNSAT", "runtime": 0.01, "stats": {}}

    def stats(self):
        return {"workers": self.size}

    def shutdown(self, drain_timeout=10.0):
        return {"drained": self.size, "killed": 0}


class TestInflightDedup:
    def test_concurrent_duplicates_coalesce(self):
        pool = _BlockingPool()
        service = SolverService(pool, ResultCache(), ServiceConfig())
        text = family_text()

        async def go():
            first = asyncio.create_task(service.handle(solve_request(text)))
            await asyncio.sleep(0.05)  # first registers as in-flight
            second = asyncio.create_task(service.handle(solve_request(text)))
            await asyncio.sleep(0.05)
            pool.release.set()
            return await asyncio.gather(first, second)

        try:
            first, second = asyncio.run(go())
        finally:
            service.close()
        assert pool.calls == 1  # one solve answered both requests
        assert first["cache"] == "miss" and second["cache"] == "coalesced"
        assert first["status"] == second["status"] == "UNSAT"
        assert service.coalesced == 1

    def test_no_cache_bypasses_dedup_and_cache(self):
        pool = _BlockingPool()
        pool.release.set()
        service = SolverService(pool, ResultCache(), ServiceConfig())
        text = family_text()

        async def go():
            await service.handle(solve_request(text))
            return await service.handle(solve_request(text, no_cache=True))

        try:
            response = asyncio.run(go())
        finally:
            service.close()
        assert pool.calls == 2
        assert response["cache"] == "miss"


# ----------------------------------------------------------------------
# end-to-end server
# ----------------------------------------------------------------------

def start_server(config, pool):
    """Run a ServiceServer in a daemon thread; returns (server, box, thread).

    ``box["summary"]`` holds the shutdown summary once the thread exits.
    """
    server = ServiceServer(config, pool)
    ready = threading.Event()
    box = {}

    def runner():
        async def go():
            await server.start()
            ready.set()
            return await server.serve(install_signals=False)

        box["summary"] = asyncio.run(go())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(10.0), "server failed to start"
    return server, box, thread


@pytest.fixture
def live_server(tmp_path):
    # Fork the pool in the main thread, before the server thread's loop.
    pool = WorkerPool(size=2)
    config = ServiceConfig(
        port=0, http_port=0, workers=2,
        cache_dir=str(tmp_path / "cache"),
        log_path=str(tmp_path / "results.jsonl"),
        drain_timeout=5.0,
    )
    server, box, thread = start_server(config, pool)
    yield server, box, config
    if thread.is_alive():
        server_loop_stop(server)
        thread.join(timeout=15.0)
    if any(w.process.is_alive() for w in pool._workers):
        pool.kill()


def server_loop_stop(server):
    try:
        with ServiceClient(port=server.port, timeout=5.0) as client:
            client.shutdown()
    except ServiceError:
        pass


class TestRetryJitter:
    """Regression tests for the seeded retry-backoff RNG (RPR003 fix)."""

    def _delays(self, client, payload, attempts=5):
        rng = client.jitter_rng(payload)
        return [client._backoff_delay(attempt, None, rng)
                for attempt in range(1, attempts + 1)]

    def test_same_seed_same_formula_replays_schedule(self):
        a = ServiceClient(seed=7)
        b = ServiceClient(seed=7)
        payload = "p cnf 1 1\n1 0\n"
        assert self._delays(a, payload) == self._delays(b, payload)

    def test_schedule_is_per_formula(self):
        client = ServiceClient(seed=7)
        first = self._delays(client, "p cnf 1 1\n1 0\n")
        second = self._delays(client, "p cnf 1 1\n-1 0\n")
        assert first != second
        # ...but re-deriving for the same formula replays it exactly,
        # regardless of how many other requests ran in between.
        assert self._delays(client, "p cnf 1 1\n1 0\n") == first

    def test_different_seeds_decorrelate(self):
        payload = "p cnf 1 1\n1 0\n"
        assert (self._delays(ServiceClient(seed=1), payload)
                != self._delays(ServiceClient(seed=2), payload))

    def test_unseeded_client_keeps_entropy_jitter(self):
        client = ServiceClient()  # seed=None: old behavior
        assert client.jitter_rng("x") is client._rng
        for attempt in range(1, 6):
            delay = client._backoff_delay(attempt, None)
            cap = min(client.backoff_cap,
                      client.backoff * (2 ** (attempt - 1)))
            assert 0.5 * cap <= delay <= 1.5 * cap

    def test_deadline_exhaustion_returns_none(self):
        client = ServiceClient(seed=3)
        assert client._backoff_delay(1, time.monotonic() - 1.0) is None


class TestServerEndToEnd:
    def test_solve_miss_then_hit_then_shutdown(self, live_server):
        server, box, config = live_server
        text = family_text()
        fingerprint = formula_fingerprint(parse_dqdimacs(text))
        with ServiceClient(port=server.port) as client:
            assert client.ping()["pong"] is True
            first = client.solve(text, family="adder", timeout=30.0)
            assert first["status"] == "UNSAT"
            assert first["cache"] == "miss"
            assert first["fingerprint"] == fingerprint
            second = client.solve(text, family="adder")
            assert second["cache"] == "hit"
            assert second["status"] == "UNSAT"
            stats = client.stats()
            assert stats["cache"]["memory_hits"] == 1
            assert stats["pool"]["completed"] == 1
            client.shutdown()
        # server drains and exits; exactly one fsynced log line
        deadline = time.monotonic() + 15.0
        while "summary" not in box and time.monotonic() < deadline:
            time.sleep(0.05)
        summary = box["summary"]
        assert summary["undrained"] == 0
        assert summary["pool"]["killed"] == 0
        with open(config.log_path) as handle:
            entries = [json.loads(durable.unframe_line(line)[0])
                       for line in handle if line.strip()]
        assert len(entries) == 1
        assert entries[0]["instance"] == fingerprint
        assert entries[0]["status"] == "UNSAT"

    def test_bad_requests_keep_connection_alive(self, live_server):
        server, _box, _config = live_server
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError, match="bad formula"):
                client.solve("p cnf nope", family="x")
            with pytest.raises(ServiceError, match="unknown op"):
                client.request({"op": "launch-missiles"})
            # same connection still serves good requests
            assert client.solve(family_text())["status"] == "UNSAT"

    def test_http_front_end(self, live_server):
        import http.client

        server, _box, _config = live_server
        conn = http.client.HTTPConnection("127.0.0.1", server.http_port,
                                          timeout=30.0)
        try:
            body = json.dumps({"formula": family_text(), "family": "adder"})
            conn.request("POST", "/solve", body=body,
                         headers={"Content-Type": "application/json"})
            reply = json.loads(conn.getresponse().read())
            assert reply["ok"] is True and reply["status"] == "UNSAT"
        finally:
            conn.close()
        conn = http.client.HTTPConnection("127.0.0.1", server.http_port,
                                          timeout=10.0)
        try:
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            assert stats["requests"] >= 1
        finally:
            conn.close()

    def test_concurrent_duplicate_clients_coalesce_or_hit(self, live_server):
        server, _box, _config = live_server
        text = family_text(seed=9)
        results = []

        def hammer():
            with ServiceClient(port=server.port) as client:
                results.append(client.solve(text, family="adder",
                                            timeout=30.0))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert len(results) == 4
        statuses = {r["status"] for r in results}
        assert statuses == {"UNSAT"}
        tags = sorted(r["cache"] for r in results)
        assert tags.count("miss") == 1  # exactly one real solve
        assert all(tag in ("miss", "hit", "coalesced") for tag in tags)
