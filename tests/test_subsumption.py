"""Tests for subsumption and self-subsuming resolution in preprocessing."""

from hypothesis import given, settings

from repro.core.preprocess import preprocess
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


class TestSubsumption:
    def test_superset_clause_removed(self):
        formula = Dqbf.build(
            [1], [(2, [1]), (3, [1])],
            [[2, 3], [2, 3, 1], [2, -3]],
        )
        result = preprocess(formula, detect_gates=False)
        assert result.stats.clauses_subsumed >= 1
        if result.status is None:
            assert (1, 2, 3) not in result.formula.matrix

    def test_duplicate_free_no_change(self):
        formula = Dqbf.build(
            [1], [(2, [1]), (3, [1])],
            [[2, 3], [-2, -3]],
        )
        result = preprocess(formula, detect_gates=False)
        assert result.stats.clauses_subsumed == 0

    def test_self_subsuming_resolution_strengthens(self):
        # (a | b | c) and (!a | b): resolving on a gives (b | c), which
        # self-subsumes the first clause to (b | c)
        formula = Dqbf.build(
            [1], [(2, [1]), (3, [1]), (4, [1])],
            [[2, 3, 4], [-2, 3]],
        )
        result = preprocess(formula, detect_gates=False, use_subsumption=True)
        assert result.stats.literals_strengthened >= 1

    def test_strengthening_to_unit_propagates(self):
        # (a | b) and (!a | b) strengthen to (b), which then propagates
        formula = Dqbf.build(
            [1], [(2, [1]), (3, [1])],
            [[2, 3], [-2, 3], [-3, 1], [-3, -1]],
        )
        result = preprocess(formula, detect_gates=False)
        # b forced, then (1) and (-1) conflict on the universal: UNSAT
        assert result.status is False

    def test_disabled_flag(self):
        formula = Dqbf.build(
            [1], [(2, [1]), (3, [1])],
            [[2, 3], [2, 3, 1]],
        )
        result = preprocess(formula, detect_gates=False, use_subsumption=False)
        assert result.stats.clauses_subsumed == 0
        assert result.stats.literals_strengthened == 0

    @settings(max_examples=100, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=10))
    def test_equisatisfiability_preserved(self, formula):
        expected = expansion_solve(formula)
        result = preprocess(formula, detect_gates=False, use_subsumption=True)
        if result.status is not None:
            assert result.status == expected
        else:
            assert expansion_solve(result.formula, limit=1 << 18) == expected
