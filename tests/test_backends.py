"""Backend equivalence: the python and numpy AIG kernels must be
indistinguishable through the public ``Aig`` API.

Every test replays the same construction / kernel-op script on
``Aig(backend="python")`` and ``Aig(backend="numpy")`` and asserts the
observable results coincide: edge identifiers (node numbering is
construction-order deterministic), truth tables via ``fraig.simulate``,
supports, levels, cone orders, fused-kernel outputs, and the traversal
``KernelCounters`` deltas.  Support-cache counters are deliberately
excluded — the numpy backend answers support queries with one cone
sweep instead of bottom-up cache fills, so its hit/miss profile differs
by design (see ``repro.aig.graph``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import fraig
from repro.aig.aiger import parse_aiger, write_aiger
from repro.aig.backend import numpy_available
from repro.aig.graph import Aig

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

# Counters whose deltas must match exactly across backends.  The masked
# numpy kernels make the same share-vs-rebuild decisions as the python
# support-set tests, so all traversal/strash work is identical.
TRAVERSAL_COUNTERS = (
    "rebuild_passes",
    "fused_passes",
    "nodes_visited",
    "nodes_shared",
    "strash_lookups",
    "strash_hits",
)

NUM_VARS = 6


@st.composite
def aig_scripts(draw):
    """A deterministic AIG construction script over NUM_VARS inputs.

    Each step combines two earlier edges (with random complement flags)
    via AND; replaying the script on any backend yields the same node
    numbering because construction order is identical.
    """
    num_steps = draw(st.integers(min_value=1, max_value=40))
    steps = []
    for index in range(num_steps):
        choices = NUM_VARS + index  # edges available before this step
        steps.append(
            (
                draw(st.integers(min_value=0, max_value=choices - 1)),
                draw(st.integers(min_value=0, max_value=choices - 1)),
                draw(st.booleans()),
                draw(st.booleans()),
            )
        )
    return steps


def build(script, backend):
    aig = Aig(backend=backend)
    edges = [aig.var(i) for i in range(1, NUM_VARS + 1)]
    for left, right, complement_left, complement_right in script:
        a = edges[left] ^ (1 if complement_left else 0)
        b = edges[right] ^ (1 if complement_right else 0)
        edges.append(aig.land(a, b))
    return aig, edges[-1]


def truth_patterns():
    """Exhaustive truth-table words for NUM_VARS inputs (width 2**n)."""
    width = 1 << NUM_VARS
    patterns = {}
    for position in range(NUM_VARS):
        word = 0
        for row in range(width):
            if (row >> position) & 1:
                word |= 1 << row
        patterns[position + 1] = word
    return patterns, width


@requires_numpy
class TestConstructionEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(aig_scripts())
    def test_truth_tables_supports_levels(self, script):
        aig_py, root_py = build(script, "python")
        aig_np, root_np = build(script, "numpy")
        assert root_py == root_np
        assert aig_py.num_nodes == aig_np.num_nodes
        assert aig_py.cone_nodes(root_py) == aig_np.cone_nodes(root_np)
        assert aig_py.support_of(root_py) == aig_np.support_of(root_np)
        assert aig_py.level_of(root_py) == aig_np.level_of(root_np)
        patterns, width = truth_patterns()
        words_py = fraig.simulate(aig_py, root_py, dict(patterns), width)
        words_np = fraig.simulate(aig_np, root_np, dict(patterns), width)
        assert words_py == words_np

    @settings(max_examples=40, deadline=None)
    @given(aig_scripts(), st.integers(min_value=1, max_value=NUM_VARS))
    def test_restrict_and_cofactor2_with_counters(self, script, var):
        results = {}
        for backend in ("python", "numpy"):
            aig, root = build(script, backend)
            aig.counters.reset()
            restricted = aig.restrict(root, {var: True})
            cof0, cof1 = aig.cofactor2(root, var)
            results[backend] = (
                restricted,
                cof0,
                cof1,
                {k: getattr(aig.counters, k) for k in TRAVERSAL_COUNTERS},
            )
        assert results["python"] == results["numpy"]

    @settings(max_examples=40, deadline=None)
    @given(aig_scripts(), st.integers(min_value=1, max_value=NUM_VARS))
    def test_fused_elimination_with_counters(self, script, var):
        dependents = [v for v in range(1, NUM_VARS + 1) if v != var][:3]
        results = {}
        for backend in ("python", "numpy"):
            aig, root = build(script, backend)
            aig.counters.reset()
            fresh = iter(range(100, 200))
            cof0, cof1, copies = aig.eliminate_universal_fused(
                root, var, dependents, lambda: next(fresh)
            )
            results[backend] = (
                cof0,
                cof1,
                copies,
                {k: getattr(aig.counters, k) for k in TRAVERSAL_COUNTERS},
            )
        assert results["python"] == results["numpy"]


@requires_numpy
class TestAigerRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(aig_scripts())
    def test_roundtrip_after_extract(self, script):
        """AIGER out/in on the compacted array core preserves the function."""
        patterns, width = truth_patterns()
        for backend in ("python", "numpy"):
            aig, root = build(script, backend)
            original = fraig.simulate(aig, root, dict(patterns), width)[root >> 1]
            if root & 1:
                original ^= (1 << width) - 1
            compact, (new_root,) = aig.extract([root])
            assert compact.backend == backend
            text = write_aiger(compact, [new_root])
            parsed, (out,), _labels = parse_aiger(text)
            value = fraig.simulate(parsed, out, dict(patterns), width)[out >> 1]
            if out & 1:
                value ^= (1 << width) - 1
            assert value == original


class TestPartialPatternSimulation:
    def _build(self, backend):
        aig = Aig(backend=backend)
        x, y, z = aig.var(1), aig.var(2), aig.var(3)
        return aig, aig.land(aig.lor(x, y), z)

    @pytest.mark.parametrize(
        "backend", ["python", pytest.param("numpy", marks=requires_numpy)]
    )
    def test_missing_variables_filled_deterministically(self, backend):
        """Regression: partial pattern maps used to KeyError."""
        aig, root = self._build(backend)
        patterns = {1: 0b1010}
        words = fraig.simulate(aig, root, patterns, width=4, seed=11)
        # the missing labels were backfilled into the caller's map ...
        assert set(patterns) == {1, 2, 3}
        # ... deterministically: a second run reproduces the same words
        again = fraig.simulate(aig, root, {1: 0b1010}, width=4, seed=11)
        assert words == again
        # ... and a different seed draws different fills
        other = fraig.simulate(aig, root, {1: 0b1010}, width=4, seed=12)
        assert other != words

    @requires_numpy
    def test_fill_identical_across_backends(self):
        aig_py, root_py = self._build("python")
        aig_np, root_np = self._build("numpy")
        words_py = fraig.simulate(aig_py, root_py, {3: 0b0110}, width=4, seed=7)
        words_np = fraig.simulate(aig_np, root_np, {3: 0b0110}, width=4, seed=7)
        assert words_py == words_np
