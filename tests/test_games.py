"""Tests for the incomplete-information game application."""

import itertools

import pytest

from repro.core.result import Limits
from repro.formula.dqbf import expansion_solve
from repro.games import BooleanGame, blind_coordination, matching_pennies_team


class TestModelValidation:
    def test_player_name_collision(self):
        game = BooleanGame(["x"])
        with pytest.raises(ValueError):
            game.add_player("x", [])

    def test_duplicate_player(self):
        game = BooleanGame(["x"])
        game.add_player("p", ["x"])
        with pytest.raises(ValueError):
            game.add_player("p", [])

    def test_unknown_observation(self):
        game = BooleanGame(["x"])
        with pytest.raises(ValueError):
            game.add_player("p", ["ghost"])

    def test_unknown_clause_name(self):
        game = BooleanGame(["x"])
        game.add_player("p", ["x"])
        with pytest.raises(ValueError):
            game.add_win_clause(("ghost", True))

    def test_empty_win_condition_rejected(self):
        game = BooleanGame(["x"])
        game.add_player("p", ["x"])
        with pytest.raises(ValueError):
            game.to_dqbf()


class TestEncoding:
    def test_dependencies_match_observations(self):
        game = BooleanGame(["a", "b"])
        game.add_player("p", ["a"])
        game.add_player("q", ["b"])
        game.add_win_clause(("p", True), ("q", True))
        formula = game.to_dqbf()
        mapping = game.variable_map()
        assert formula.prefix.dependencies(mapping["p"]) == frozenset([mapping["a"]])
        assert formula.prefix.dependencies(mapping["q"]) == frozenset([mapping["b"]])
        assert not formula.is_qbf()  # genuinely Henkin

    def test_encoding_agrees_with_oracle(self):
        game = BooleanGame(["a"])
        game.add_player("p", ["a"])
        game.add_win_clause(("p", True), ("a", True))
        game.add_win_clause(("p", False), ("a", False))
        # p must equal !a ... clause1: p | a ; clause2: !p | !a -> p == !a
        assert expansion_solve(game.to_dqbf())
        assert game.has_winning_strategy()


class TestKnownGames:
    def test_matching_pennies_team_winnable(self):
        for n in (1, 2):
            game = matching_pennies_team(n)
            assert game.has_winning_strategy(Limits(time_limit=30))

    def test_blind_coordination_unwinnable(self):
        game = blind_coordination(2)
        assert not game.has_winning_strategy(Limits(time_limit=30))
        assert game.winning_strategies(Limits(time_limit=30)) is None

    def test_strategies_win_every_play(self):
        game = matching_pennies_team(2)
        strategies = game.winning_strategies(Limits(time_limit=60))
        assert strategies is not None
        assert set(strategies) == {"p0", "p1"}
        for values in itertools.product([False, True], repeat=2):
            play = dict(zip(["x0", "x1"], values))
            assert game.play(strategies, play), play

    def test_partial_observation_matters(self):
        """The same win condition becomes unwinnable when a player loses
        its observation."""
        # team must output (p == a) and (q == b)
        def build(p_sees, q_sees):
            game = BooleanGame(["a", "b"])
            game.add_player("p", p_sees)
            game.add_player("q", q_sees)
            game.add_win_clause(("p", True), ("a", False))
            game.add_win_clause(("p", False), ("a", True))
            game.add_win_clause(("q", True), ("b", False))
            game.add_win_clause(("q", False), ("b", True))
            return game

        assert build(["a"], ["b"]).has_winning_strategy()
        assert not build(["b"], ["a"]).has_winning_strategy()
