"""Tests for dependency graphs, the cyclicity test and prefix linearization."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.depgraph import (
    dependency_edges,
    incomparable_pairs,
    is_acyclic,
    linearize,
)
from repro.formula.dqbf import Dqbf, expansion_solve
from repro.formula.prefix import EXISTS, FORALL, DependencyPrefix
from repro.formula.qbf import Qbf, brute_force_qbf

import pytest


def prefix_of(universals, existentials) -> DependencyPrefix:
    prefix = DependencyPrefix()
    for x in universals:
        prefix.add_universal(x)
    for y, deps in existentials:
        prefix.add_existential(y, deps)
    return prefix


class TestDependencyEdges:
    def test_example_1_cycle(self):
        """Fig. 2: forall x1 x2 exists y1(x1) y2(x2) has a 2-cycle."""
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        edges = set(dependency_edges(prefix))
        assert (3, 4) in edges and (4, 3) in edges

    def test_chain_has_one_direction(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [1, 2])])
        edges = set(dependency_edges(prefix))
        assert (4, 3) in edges
        assert (3, 4) not in edges

    def test_equal_dependency_sets_no_edges(self):
        prefix = prefix_of([1], [(2, [1]), (3, [1])])
        assert dependency_edges(prefix) == []


class TestCyclicity:
    def test_example_1_is_cyclic(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        assert not is_acyclic(prefix)
        assert incomparable_pairs(prefix) == [(3, 4)]

    def test_chain_is_acyclic(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [1, 2])])
        assert is_acyclic(prefix)
        assert incomparable_pairs(prefix) == []

    def test_single_existential_acyclic(self):
        prefix = prefix_of([1, 2], [(3, [2])])
        assert is_acyclic(prefix)

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_theorem4_pairs_iff_cyclic(self, data):
        """Theorem 4: graph cyclic <=> some pair incomparable.  We verify
        against an explicit graph-cycle search."""
        nu = data.draw(st.integers(1, 4))
        ne = data.draw(st.integers(1, 4))
        universals = list(range(1, nu + 1))
        existentials = []
        for i in range(ne):
            deps = data.draw(st.lists(st.sampled_from(universals), unique=True, max_size=nu))
            existentials.append((nu + 1 + i, deps))
        prefix = prefix_of(universals, existentials)
        edges = dependency_edges(prefix)
        # explicit cycle detection by DFS
        graph = {}
        for a, b in edges:
            graph.setdefault(a, []).append(b)

        def has_cycle():
            state = {}

            def visit(node):
                if state.get(node) == 1:
                    return True
                if state.get(node) == 2:
                    return False
                state[node] = 1
                for nxt in graph.get(node, []):
                    if visit(nxt):
                        return True
                state[node] = 2
                return False

            return any(visit(y) for y, _ in existentials)

        assert is_acyclic(prefix) == (not has_cycle())
        assert bool(incomparable_pairs(prefix)) == has_cycle()


class TestLinearize:
    def test_cyclic_prefix_rejected(self):
        prefix = prefix_of([1, 2], [(3, [1]), (4, [2])])
        with pytest.raises(ValueError):
            linearize(prefix)

    def test_blocks_ordered_by_inclusion(self):
        prefix = prefix_of(
            [1, 2, 3],
            [(4, [1]), (5, [1, 2]), (6, [1])],
        )
        blocked = linearize(prefix)
        blocks = blocked.blocks
        assert blocks[0] == (FORALL, [1])
        assert blocks[1][0] == EXISTS and set(blocks[1][1]) == {4, 6}
        assert blocks[2] == (FORALL, [2])
        assert blocks[3] == (EXISTS, [5])
        assert blocks[4] == (FORALL, [3])  # trailing universals

    def test_empty_dependency_first(self):
        prefix = prefix_of([1], [(2, []), (3, [1])])
        blocked = linearize(prefix)
        assert blocked.blocks[0] == (EXISTS, [2])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_linearization_preserves_truth(self, data):
        """For an acyclic DQBF, the linearized QBF must be equivalent."""
        rng = random.Random(data.draw(st.integers(0, 10**6)))
        nu = rng.randint(1, 3)
        universals = list(range(1, nu + 1))
        # generate chain-ordered dependency sets so the prefix is acyclic
        ne = rng.randint(1, 3)
        sizes = sorted(rng.randint(0, nu) for _ in range(ne))
        existentials = [
            (nu + 1 + i, universals[: sizes[i]]) for i in range(ne)
        ]
        num_vars = nu + ne
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 8))
        ]
        formula = Dqbf.build(universals, existentials, clauses)
        assert formula.is_qbf()
        blocked = linearize(formula.prefix)
        qbf = Qbf(blocked, formula.matrix.copy())
        # variables the prefix lost (none here) would break validate()
        assert sorted(blocked.variables()) == sorted(formula.prefix.all_variables())
        assert brute_force_qbf(qbf) == expansion_solve(formula)
