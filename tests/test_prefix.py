"""Tests for DQBF dependency prefixes and QBF blocked prefixes."""

import pytest

from repro.formula.prefix import EXISTS, FORALL, BlockedPrefix, DependencyPrefix


def simple_prefix() -> DependencyPrefix:
    prefix = DependencyPrefix()
    prefix.add_universal(1)
    prefix.add_universal(2)
    prefix.add_existential(3, [1])
    prefix.add_existential(4, [2])
    return prefix


class TestDependencyPrefix:
    def test_declaration_order_preserved(self):
        prefix = simple_prefix()
        assert prefix.universals == [1, 2]
        assert prefix.existentials == [3, 4]

    def test_double_quantification_rejected(self):
        prefix = simple_prefix()
        with pytest.raises(ValueError):
            prefix.add_universal(3)
        with pytest.raises(ValueError):
            prefix.add_existential(1, [])

    def test_dependency_on_unknown_universal_rejected(self):
        prefix = DependencyPrefix()
        prefix.add_universal(1)
        with pytest.raises(ValueError):
            prefix.add_existential(2, [99])

    def test_dependencies(self):
        prefix = simple_prefix()
        assert prefix.dependencies(3) == frozenset([1])
        assert prefix.dependencies(4) == frozenset([2])

    def test_dependents_of(self):
        prefix = simple_prefix()
        assert prefix.dependents_of(1) == [3]
        assert prefix.dependents_of(2) == [4]

    def test_remove_universal_updates_dependency_sets(self):
        prefix = simple_prefix()
        prefix.remove_universal(1)
        assert prefix.dependencies(3) == frozenset()
        assert 1 not in prefix.universals

    def test_remove_existential(self):
        prefix = simple_prefix()
        prefix.remove_existential(3)
        assert prefix.existentials == [4]
        with pytest.raises(KeyError):
            prefix.dependencies(3)

    def test_remove_variable_dispatches(self):
        prefix = simple_prefix()
        prefix.remove_variable(1)
        prefix.remove_variable(3)
        assert prefix.universals == [2]
        assert prefix.existentials == [4]

    def test_restrict_to_support(self):
        prefix = simple_prefix()
        removed = prefix.restrict_to({1, 3})
        assert set(removed) == {2, 4}
        assert prefix.universals == [1]
        assert prefix.existentials == [3]

    def test_is_qbf_shaped_example1(self):
        """Example 1 of the paper has no equivalent QBF prefix."""
        prefix = simple_prefix()
        assert not prefix.is_qbf_shaped()

    def test_is_qbf_shaped_chain(self):
        prefix = DependencyPrefix()
        prefix.add_universal(1)
        prefix.add_universal(2)
        prefix.add_existential(3, [1])
        prefix.add_existential(4, [1, 2])
        assert prefix.is_qbf_shaped()

    def test_copy_independent(self):
        prefix = simple_prefix()
        clone = prefix.copy()
        clone.remove_universal(1)
        assert 1 in prefix.universals

    def test_set_dependencies(self):
        prefix = simple_prefix()
        prefix.set_dependencies(3, [1, 2])
        assert prefix.dependencies(3) == frozenset([1, 2])
        with pytest.raises(ValueError):
            prefix.set_dependencies(3, [42])

    def test_equality_ignores_order(self):
        a = DependencyPrefix()
        a.add_universal(1)
        a.add_universal(2)
        a.add_existential(3, [1])
        b = DependencyPrefix()
        b.add_universal(2)
        b.add_universal(1)
        b.add_existential(3, [1])
        assert a == b


class TestBlockedPrefix:
    def test_adjacent_blocks_merge(self):
        prefix = BlockedPrefix([(FORALL, [1]), (FORALL, [2]), (EXISTS, [3])])
        assert prefix.blocks == [(FORALL, [1, 2]), (EXISTS, [3])]

    def test_empty_blocks_skipped(self):
        prefix = BlockedPrefix([(FORALL, []), (EXISTS, [3])])
        assert prefix.blocks == [(EXISTS, [3])]

    def test_invalid_quantifier(self):
        with pytest.raises(ValueError):
            BlockedPrefix([("x", [1])])

    def test_quantifier_of(self):
        prefix = BlockedPrefix([(FORALL, [1]), (EXISTS, [2])])
        assert prefix.quantifier_of(1) == FORALL
        assert prefix.quantifier_of(2) == EXISTS
        assert prefix.quantifier_of(9) is None

    def test_innermost_block(self):
        prefix = BlockedPrefix([(FORALL, [1]), (EXISTS, [2, 3])])
        assert prefix.innermost_block() == (EXISTS, [2, 3])

    def test_remove_variable_merges_neighbours(self):
        prefix = BlockedPrefix([(FORALL, [1]), (EXISTS, [2]), (FORALL, [3])])
        prefix.remove_variable(2)
        assert prefix.blocks == [(FORALL, [1, 3])]

    def test_remove_missing_variable_raises(self):
        prefix = BlockedPrefix([(FORALL, [1])])
        with pytest.raises(KeyError):
            prefix.remove_variable(7)

    def test_to_dependency_prefix(self):
        """The embedding below Definition 3 of the paper."""
        prefix = BlockedPrefix([(FORALL, [1]), (EXISTS, [2]), (FORALL, [3]), (EXISTS, [4])])
        dep = prefix.to_dependency_prefix()
        assert dep.dependencies(2) == frozenset([1])
        assert dep.dependencies(4) == frozenset([1, 3])

    def test_len(self):
        prefix = BlockedPrefix([(FORALL, [1, 2]), (EXISTS, [3])])
        assert len(prefix) == 3
