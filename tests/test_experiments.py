"""Tests for the experiment harness (runner, Table I, Fig. 4, ext stats)."""

import pytest

from repro.core.result import SAT, TIMEOUT, UNSAT, SolveResult
from repro.experiments import extstats as stats_module
from repro.experiments.extstats import (
    extended_stats,
    fraction_solved_fast,
    maxsat_times,
    unit_pure_fractions,
)
from repro.experiments.fig4 import ScatterPoint, build_scatter, scatter_summary, to_csv
from repro.experiments.runner import (
    BenchConfig,
    RunRecord,
    SOLVERS,
    generate_suite,
    run_solver,
    run_suite,
)
from repro.experiments.table1 import build_table, format_table
from repro.pec.families import make_adder


def tiny_config() -> BenchConfig:
    return BenchConfig(scale=1.0, count=2, timeout=10.0, node_limit=200000, seed=7)


@pytest.fixture(scope="module")
def records():
    config = BenchConfig(scale=1.0, count=2, timeout=10.0, node_limit=200000, seed=7)
    return run_suite(config, solvers=("HQS", "IDQ"), families=("adder", "pec_xor"))


class TestRunner:
    def test_config_from_kwargs(self):
        config = BenchConfig(scale=2.0, count=3, timeout=1.5, node_limit=10)
        assert config.scale == 2.0 and config.count == 3
        limits = config.limits()
        assert limits.time_limit == 1.5 and limits.node_limit == 10

    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "3.0")
        monkeypatch.setenv("REPRO_BENCH_COUNT", "9")
        config = BenchConfig()
        assert config.scale == 3.0 and config.count == 9

    def test_generate_suite(self):
        suite = generate_suite(tiny_config(), families=("adder",))
        assert set(suite) == {"adder"}
        assert len(suite["adder"]) == 2

    def test_run_solver_checks_expected(self):
        instance = make_adder(3, 1, buggy=True, seed=1)
        record = run_solver("HQS", instance, tiny_config())
        assert record.result.status == UNSAT
        assert record.solved

    def test_wrong_answer_records_mismatch(self):
        # A mismatch used to raise AssertionError and abort the sweep;
        # it is now a recorded MISMATCH status (same on the parallel path).
        from repro.core.result import MISMATCH

        instance = make_adder(3, 1, buggy=True, seed=1)
        instance.expected = True  # sabotage
        record = run_solver("HQS", instance, tiny_config())
        assert record.result.status == MISMATCH
        assert not record.solved

    @pytest.mark.slow
    def test_all_registered_solvers_runnable(self):
        instance = make_adder(3, 1, buggy=False, seed=2)
        for name in SOLVERS:
            record = run_solver(name, instance, tiny_config())
            assert record.solver == name

    def test_records_cover_suite(self, records):
        assert len(records) == 2 * 2 * 2  # families x instances x solvers


class TestTable1(object):
    def test_rows_aggregate(self, records):
        rows = build_table(records)
        by_key = {(r.family, r.solver): r for r in rows}
        assert by_key[("adder", "HQS")].instances == 2
        total_hqs = by_key[("total", "HQS")]
        assert total_hqs.instances == 4
        assert total_hqs.solved == total_hqs.sat + total_hqs.unsat

    def test_common_time_uses_shared_instances_only(self):
        instance = make_adder(3, 1, buggy=True, seed=1)
        rec_fast = RunRecord(instance, "HQS", SolveResult(UNSAT, 0.5))
        rec_to = RunRecord(instance, "IDQ", SolveResult(TIMEOUT, 5.0))
        rows = build_table([rec_fast, rec_to])
        for row in rows:
            assert row.total_time_common == 0.0  # not solved by both

    def test_format_table_renders(self, records):
        text = format_table(build_table(records))
        assert "family" in text and "total" in text


class TestFig4:
    def test_points_paired(self, records):
        points = build_scatter(records)
        assert len(points) == 4
        for point in points:
            assert point.hqs_time >= 0 and point.idq_time >= 0

    def test_summary_claims(self, records):
        points = build_scatter(records)
        summary = scatter_summary(points)
        assert summary["points"] == 4
        assert summary["both_solved"] <= 4
        # HQS never solves fewer instances than IDQ on these families
        assert summary["idq_only_solved"] == 0

    def test_speedup_none_when_unsolved(self):
        instance = make_adder(3, 1, buggy=True, seed=1)
        point = ScatterPoint("a", "adder", 0.1, 5.0, SAT, TIMEOUT)
        assert point.speedup is None

    def test_csv_output(self, records):
        text = to_csv(build_scatter(records))
        lines = text.strip().split("\n")
        assert lines[0].startswith("instance,family")
        assert len(lines) == 5


class TestExtStats:
    def test_fraction_solved_fast(self, records):
        fraction = fraction_solved_fast(records, "HQS", threshold=100.0)
        assert fraction == 1.0

    def test_fraction_none_without_solved(self):
        assert fraction_solved_fast([], "HQS") is None

    def test_maxsat_and_unitpure_series(self, records):
        assert all(t >= 0 for t in maxsat_times(records))
        assert all(0 <= f <= 1.0 for f in unit_pure_fractions(records))

    def test_extended_stats_keys(self, records):
        stats = extended_stats(records)
        assert set(stats) == {
            "hqs_under_1s_fraction",
            "idq_under_1s_fraction",
            "max_maxsat_time",
            "mean_maxsat_time",
            "max_unit_pure_fraction",
            "mean_unit_pure_fraction",
            "stage_time_totals",
        }

    def test_stage_time_totals(self, records):
        totals = stats_module.stage_time_totals(records)
        assert set(totals) == set(stats_module.STAGE_TIMERS)
        assert all(v >= 0.0 for v in totals.values())
