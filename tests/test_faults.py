"""Unit tests for the fault-injection framework and the CRC framing.

:mod:`repro.faults` supplies deterministic, seeded fault schedules;
:mod:`repro.durable` supplies the CRC-32 framing those schedules tear
at.  Both are pure-python and testable without spawning any workers —
the end-to-end behaviour under faults lives in ``test_chaos.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro import durable, faults
from repro.faults import Fault, FaultPlan, FaultSpecError


@pytest.fixture(autouse=True)
def _clean_plan():
    """Never leak an installed plan (or a cached env resolution)."""
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------

class TestSpecGrammar:
    def test_parse_round_trips(self):
        spec = ("pool.solve:crash@2;cache.write:torn@1x3;"
                "server.send:drop@5,seconds=0.1")
        plan = FaultPlan.parse(spec)
        assert len(plan) == 3
        assert plan.spec() == spec
        assert plan.faults[1].count == 3
        assert plan.faults[2].args == {"seconds": 0.1}

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            FaultPlan.parse("warp.core:crash@1")

    def test_kind_must_fit_site(self):
        # torn writes make no sense for a worker process.
        with pytest.raises(FaultSpecError, match="not injectable"):
            FaultPlan.parse("pool.solve:torn@1")

    def test_indices_are_one_based(self):
        with pytest.raises(FaultSpecError, match="1-based"):
            Fault("pool.solve", "crash", nth=0)

    def test_malformed_specs_rejected(self):
        for bad in ("pool.solve", "pool.solve:crash", "pool.solve:@1",
                    "pool.solve:crash@x", "pool.solve:crash@1,seconds"):
            with pytest.raises(FaultSpecError):
                FaultPlan.parse(bad)

    def test_empty_segments_ignored(self):
        assert len(FaultPlan.parse("; pool.solve:crash@1 ;;")) == 1


# ----------------------------------------------------------------------
# firing
# ----------------------------------------------------------------------

class TestFiring:
    def test_nth_event_fires_others_dont(self):
        plan = FaultPlan.parse("cache.write:torn@2")
        assert plan.fire("cache.write") is None
        fault = plan.fire("cache.write")
        assert fault is not None and fault.kind == "torn"
        assert plan.fire("cache.write") is None
        assert plan.fired == [("cache.write", "torn", 2)]

    def test_count_covers_consecutive_events(self):
        plan = FaultPlan.parse("log.append:ioerror@2x2")
        hits = [plan.fire("log.append") is not None for _ in range(4)]
        assert hits == [False, True, True, False]

    def test_sites_count_independently(self):
        plan = FaultPlan.parse("cache.write:torn@1;log.append:torn@2")
        assert plan.fire("cache.write") is not None
        assert plan.fire("log.append") is None
        assert plan.fire("log.append") is not None

    def test_advance_skips_past_events(self):
        # A respawned worker is handed its slot's prior event count so
        # the schedule continues instead of replaying.
        plan = FaultPlan.parse("pool.solve:crash@2")
        plan.advance("pool.solve", 2)
        assert plan.fire("pool.solve") is None  # event 3: past the crash
        plan2 = FaultPlan.parse("pool.solve:crash@2")
        plan2.advance("pool.solve", 1)
        assert plan2.fire("pool.solve") is not None  # event 2: the crash

    def test_fired_kinds_summary(self):
        plan = FaultPlan.parse("cache.write:torn@1x2;log.append:ioerror@1")
        plan.fire("cache.write")
        plan.fire("cache.write")
        plan.fire("log.append")
        assert plan.fired_kinds() == {"torn": 2, "ioerror": 1}


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=7, events=20, horizon=50)
        b = FaultPlan.random(seed=7, events=20, horizon=50)
        assert a.spec() == b.spec()
        assert FaultPlan.random(seed=8, events=20, horizon=50).spec() != a.spec()

    def test_site_and_kind_filters(self):
        plan = FaultPlan.random(seed=3, events=10, horizon=10,
                                sites=["cache.write"], kinds=["torn"])
        assert all(f.site == "cache.write" and f.kind == "torn"
                   for f in plan.faults)

    def test_impossible_filter_combination(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.random(seed=1, events=1, horizon=1,
                             sites=["cache.write"], kinds=["crash"])


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------

class TestInstallation:
    def test_fire_is_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.clear()
        assert faults.fire("pool.solve") is None
        assert faults.active() is None

    def test_env_var_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.write:torn@1")
        faults.clear()
        assert faults.fire("cache.write") is not None
        # Resolution is cached: changing the env later has no effect.
        monkeypatch.setenv(faults.ENV_VAR, "cache.write:torn@1x99")
        assert faults.fire("cache.write") is None

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "cache.write:torn@1")
        faults.install(FaultPlan.parse("log.append:ioerror@1"))
        assert faults.fire("cache.write") is None
        assert faults.fire("log.append") is not None

    def test_plan_pickles_without_counters(self):
        plan = FaultPlan.parse("pool.solve:crash@2")
        plan.fire("pool.solve")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.spec() == plan.spec()
        assert clone.events("pool.solve") == 0  # counters are per-process
        assert clone.fired == []


# ----------------------------------------------------------------------
# durable whole-file framing
# ----------------------------------------------------------------------

class TestFileFraming:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "blob")
        durable.write_framed(path, b'{"status": "SAT"}')
        assert durable.read_framed(path) == b'{"status": "SAT"}'

    def test_legacy_unframed_passthrough(self, tmp_path):
        path = tmp_path / "legacy"
        path.write_bytes(b'{"status": "SAT"}')
        assert durable.read_framed(str(path)) == b'{"status": "SAT"}'

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "torn"
        durable.write_framed(str(path), b"x" * 100)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 30])
        with pytest.raises(durable.CorruptRecordError, match="torn write"):
            durable.read_framed(str(path))

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "rot"
        durable.write_framed(str(path), b'{"status": "UNSAT"}')
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x20  # "UNSAT" -> "UNSAt": same length, wrong CRC
        path.write_bytes(bytes(blob))
        with pytest.raises(durable.CorruptRecordError, match="checksum"):
            durable.read_framed(str(path))

    def test_header_garbage_detected(self, tmp_path):
        path = tmp_path / "header"
        path.write_bytes(durable.FILE_MAGIC + b"not numbers\npayload")
        with pytest.raises(durable.CorruptRecordError, match="header"):
            durable.read_framed(str(path))

    def test_torn_fault_injection(self, tmp_path):
        faults.install(FaultPlan.parse("cache.write:torn@1"))
        path = str(tmp_path / "entry.json")
        durable.write_framed(path, b"z" * 200, fault_site="cache.write")
        # The write "succeeded" but left a prefix — the frame catches it.
        with pytest.raises(durable.CorruptRecordError):
            durable.read_framed(path)

    def test_ioerror_fault_injection(self, tmp_path):
        faults.install(FaultPlan.parse("checkpoint.save:ioerror@1"))
        with pytest.raises(OSError, match="injected"):
            durable.write_framed(str(tmp_path / "x.ckpt"), b"payload",
                                 fault_site="checkpoint.save")
        assert list(tmp_path.iterdir()) == []  # no tmp file left behind


# ----------------------------------------------------------------------
# durable JSONL line framing
# ----------------------------------------------------------------------

class TestLineFraming:
    def test_round_trip(self):
        line = durable.frame_line('{"a": 1}')
        assert line.endswith("\n")
        assert durable.unframe_line(line) == ('{"a": 1}', "ok")

    def test_legacy_line(self):
        assert durable.unframe_line('{"a": 1}\n') == ('{"a": 1}', "legacy")

    def test_torn_suffix_is_corrupt(self):
        line = durable.frame_line('{"a": 1}')
        assert durable.unframe_line(line[:-3])[1] == "corrupt"

    def test_payload_edit_is_corrupt(self):
        line = durable.frame_line('{"a": 1}')
        assert durable.unframe_line(line.replace('"a"', '"b"'))[1] == "corrupt"

    def test_multiline_payload_rejected(self):
        with pytest.raises(ValueError):
            durable.frame_line("two\nlines")


class TestQuarantine:
    def test_renames_and_reports(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_bytes(b"garbage")
        target = durable.quarantine(str(path))
        assert target == str(path) + durable.QUARANTINE_SUFFIX
        assert not path.exists()
        assert (tmp_path / ("bad.json" + durable.QUARANTINE_SUFFIX)).exists()

    def test_missing_file_returns_none(self, tmp_path):
        assert durable.quarantine(str(tmp_path / "never")) is None
