"""Fault-injection and regression tests for the parallel experiment runner.

Covers the hard-timeout kill path (a solver that sleeps past its
budget), crash containment (a solver that raises, a worker that dies
without reporting), JSONL persistence with resume, portfolio racing,
and the resource-limit bugfixes (``Limits.child`` double-budget,
``MISMATCH`` recording, ``REPRO_BENCH_SEED``).

The injected solvers are module-level functions: workers are forked, so
entries added to ``runner.SOLVERS`` at test time are inherited.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core.result import (
    ERROR,
    MISMATCH,
    SAT,
    TIMEOUT,
    UNKNOWN,
    UNSAT,
    Limits,
    SolveResult,
)
from repro.experiments import runner
from repro.experiments.parallel import (
    ResultLog,
    portfolio_label,
    record_to_entry,
    run_portfolio,
    run_records,
    run_suite_parallel,
)
from repro.experiments.runner import BenchConfig, run_solver, run_suite
from repro.pec.families import generate_family, make_adder


def _sleepy_solver(formula, limits):
    """Ignores every cooperative check — only a hard kill stops it."""
    time.sleep(60.0)
    return SolveResult(UNKNOWN)


def _crashy_solver(formula, limits):
    raise RuntimeError("injected solver crash")


def _dying_solver(formula, limits):
    os._exit(7)  # worker vanishes without reporting back


def _wrong_solver(formula, limits):
    return SolveResult(SAT, 0.001)  # definitive and wrong on buggy instances


INJECTED = {
    "SLEEPY": _sleepy_solver,
    "CRASHY": _crashy_solver,
    "DYING": _dying_solver,
    "WRONG": _wrong_solver,
}


@pytest.fixture(autouse=True)
def injected_solvers():
    runner.SOLVERS.update(INJECTED)
    yield
    for name in INJECTED:
        runner.SOLVERS.pop(name, None)


def tiny_config(**overrides) -> BenchConfig:
    defaults = dict(scale=1.0, count=2, timeout=10.0, node_limit=200000, seed=7)
    defaults.update(overrides)
    return BenchConfig(**defaults)


@pytest.fixture
def unsat_instance():
    return make_adder(3, 1, buggy=True, seed=1)


def keyset(records):
    return {(r.instance.name, r.solver, r.result.status) for r in records}


class TestLimitsChild:
    def test_remaining_counts_down(self):
        limits = Limits(time_limit=10.0)
        assert 9.0 < limits.remaining() <= 10.0
        assert Limits(time_limit=None).remaining() is None

    def test_remaining_never_negative(self):
        limits = Limits(time_limit=0.001)
        time.sleep(0.01)
        assert limits.remaining() == 0.0

    def test_child_inherits_remaining_budget(self):
        limits = Limits(time_limit=10.0, node_limit=500)
        time.sleep(0.02)
        child = limits.child()
        assert child.time_limit < 10.0
        assert child.node_limit == 500
        # the child's clock is fresh: restart_clock on it cannot extend
        # the budget past the parent's remaining time
        assert child.time_limit <= limits.time_limit - 0.02 + 0.005

    def test_child_caps_explicit_request(self):
        limits = Limits(time_limit=0.05)
        time.sleep(0.06)
        child = limits.child(time_limit=60.0)
        assert child.time_limit == 0.0  # exhausted parent grants nothing

    def test_child_unlimited_parent(self):
        child = Limits().child(time_limit=3.0, node_limit=9)
        assert child.time_limit == 3.0 and child.node_limit == 9

    def test_certificate_gets_child_budget(self, tmp_path, monkeypatch):
        """Regression: `--certificate` used to re-run on the consumed Limits,
        doubling the wall-clock budget via the second solve's restart_clock."""
        from repro import cli
        from repro.core import skolem
        from repro.formula.dqdimacs import save_dqdimacs

        instance = make_adder(3, 1, buggy=False, seed=2)
        path = tmp_path / "sat.dqdimacs"
        save_dqdimacs(instance.formula, str(path))

        captured = {}
        real_extract = skolem.extract_certificate

        def spying_extract(formula, limits=None):
            captured["limits"] = limits
            return real_extract(formula, limits)

        monkeypatch.setattr(skolem, "extract_certificate", spying_extract)
        code = cli.main(["--timeout", "60", "--certificate", str(path)])
        assert code == cli.EXIT_SAT
        handed = captured["limits"]
        # the main solve consumed part of the 60 s, so the extraction
        # budget must be strictly smaller — not a fresh 60 s
        assert handed.time_limit is not None
        assert 0.0 < handed.time_limit < 60.0


class TestMismatchRecording:
    def test_serial_records_mismatch(self, unsat_instance):
        unsat_instance.expected = True  # sabotage: the adder bug is UNSAT
        record = run_solver("HQS", unsat_instance, tiny_config())
        assert record.result.status == MISMATCH
        assert not record.solved
        assert record.result.stats["claimed_sat"] == 0.0

    def test_wrong_definitive_answer_is_mismatch(self, unsat_instance):
        record = run_solver("WRONG", unsat_instance, tiny_config())
        assert record.result.status == MISMATCH
        assert record.result.stats["claimed_sat"] == 1.0

    def test_sweep_survives_mismatch(self, unsat_instance):
        config = tiny_config(count=1)
        records = run_records([unsat_instance], ("WRONG", "HQS"), config, jobs=2)
        statuses = {r.solver: r.result.status for r in records}
        assert statuses == {"WRONG": MISMATCH, "HQS": UNSAT}


class TestPoolFaultTolerance:
    def test_parallel_matches_serial(self):
        config = tiny_config()
        serial = run_suite(config, solvers=("HQS", "IDQ"), families=("adder", "pec_xor"))
        parallel = run_suite(
            config, solvers=("HQS", "IDQ"), families=("adder", "pec_xor"), jobs=3
        )
        assert keyset(serial) == keyset(parallel)
        # deterministic output order: family, instance, solver
        assert [(r.instance.name, r.solver) for r in serial] == [
            (r.instance.name, r.solver) for r in parallel
        ]

    def test_hanging_solver_is_hard_killed(self, unsat_instance):
        config = tiny_config(count=1, timeout=0.5)
        start = time.monotonic()
        records = run_records(
            [unsat_instance], ("SLEEPY", "HQS"), config, jobs=2, grace=0.5
        )
        elapsed = time.monotonic() - start
        by_solver = {r.solver: r for r in records}
        assert by_solver["SLEEPY"].result.status == TIMEOUT
        assert by_solver["SLEEPY"].result.stats["hard_timeout"] == 1.0
        assert by_solver["HQS"].result.status == UNSAT
        assert elapsed < 30.0  # nowhere near the injected 60 s sleep

    def test_crashing_solver_is_contained(self, unsat_instance):
        config = tiny_config(count=1)
        records = run_records([unsat_instance], ("CRASHY", "HQS"), config, jobs=2)
        by_solver = {r.solver: r for r in records}
        assert by_solver["CRASHY"].result.status == ERROR
        assert "injected solver crash" in by_solver["CRASHY"].error
        assert by_solver["HQS"].result.status == UNSAT

    def test_dying_worker_is_contained(self, unsat_instance):
        config = tiny_config(count=1)
        records = run_records([unsat_instance], ("DYING", "HQS"), config, jobs=2)
        by_solver = {r.solver: r for r in records}
        assert by_solver["DYING"].result.status == ERROR
        assert by_solver["DYING"].result.stats["exitcode"] == 7.0
        assert by_solver["HQS"].result.status == UNSAT

    def test_jobs_must_be_positive(self, unsat_instance):
        with pytest.raises(ValueError):
            run_records([unsat_instance], ("HQS",), tiny_config(), jobs=0)


class TestResultLogResume:
    def test_roundtrip(self, tmp_path, unsat_instance):
        path = str(tmp_path / "results.jsonl")
        config = tiny_config(count=1)
        with ResultLog(path) as log:
            run_records([unsat_instance], ("HQS",), config, jobs=1, log=log)
        entries = ResultLog(path).load()
        assert (unsat_instance.name, "HQS") in entries
        assert entries[(unsat_instance.name, "HQS")]["status"] == UNSAT

    def test_truncated_line_is_skipped(self, tmp_path, unsat_instance):
        path = tmp_path / "results.jsonl"
        record = run_solver("HQS", unsat_instance, tiny_config())
        good = json.dumps(record_to_entry(record))
        path.write_text(good + "\n" + good[: len(good) // 2])  # killed mid-write
        entries = ResultLog(str(path)).load()
        assert list(entries) == [(unsat_instance.name, "HQS")]

    def test_append_survives_sigkill(self, tmp_path):
        """Every acknowledged append is on disk even if the process is
        SIGKILLed right after: append flushes *and* fsyncs each line."""
        path = tmp_path / "killed.jsonl"
        script = (
            "import os, sys\n"
            "from repro.experiments.parallel import ResultLog\n"
            "log = ResultLog(sys.argv[1])\n"
            "for i in range(5):\n"
            "    log.append({'instance': f'i{i}', 'solver': 'HQS',\n"
            "                'status': 'UNSAT', 'runtime': 0.0})\n"
            "print('APPENDED', flush=True)\n"
            "import time; time.sleep(30)\n"  # killed here, handle never closed
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "APPENDED"
            proc.kill()  # SIGKILL: no atexit, no flush, no close
        finally:
            proc.wait(timeout=10)
            proc.stdout.close()
        entries = ResultLog(str(path)).load()
        assert sorted(entries) == [(f"i{i}", "HQS") for i in range(5)]

    def test_resume_skips_recorded_pairs(self, tmp_path):
        """A pair in the log is *not* re-run: its (fabricated) logged status
        is returned verbatim, and only the missing pairs are solved."""
        config = tiny_config(count=2, seed=7)
        instances = generate_family("adder", 2, scale=1.0, seed=7)
        path = tmp_path / "results.jsonl"
        fake = {
            "instance": instances[0].name,
            "family": "adder",
            "solver": "HQS",
            "status": "MEMOUT",  # deliberately wrong: detects a re-run
            "runtime": 123.0,
            "stats": {},
        }
        path.write_text(json.dumps(fake) + "\n")
        records = run_suite_parallel(
            config,
            solvers=("HQS",),
            families=("adder",),
            jobs=2,
            log_path=str(path),
            resume=True,
        )
        by_name = {r.instance.name: r for r in records}
        assert by_name[instances[0].name].result.status == "MEMOUT"
        assert by_name[instances[0].name].result.runtime == 123.0
        assert by_name[instances[1].name].result.status in (SAT, UNSAT)
        # the log now holds exactly one line per pair — no duplicates
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2

    def test_fresh_run_then_resume_runs_nothing(self, tmp_path):
        config = tiny_config(count=2, seed=7)
        path = str(tmp_path / "results.jsonl")
        first = run_suite_parallel(
            config, solvers=("HQS",), families=("adder",), jobs=2,
            log_path=path, resume=False,
        )
        size_after_first = os.path.getsize(path)
        second = run_suite_parallel(
            config, solvers=("HQS",), families=("adder",), jobs=2,
            log_path=path, resume=True,
        )
        assert keyset(first) == keyset(second)
        assert os.path.getsize(path) == size_after_first  # nothing re-appended


class TestPortfolio:
    def test_fast_leg_wins_and_losers_cancelled(self, unsat_instance):
        config = tiny_config(count=1, timeout=20.0)
        start = time.monotonic()
        record = run_portfolio(unsat_instance, ("SLEEPY", "HQS"), config)
        elapsed = time.monotonic() - start
        assert record.result.status == UNSAT
        assert record.winner == "HQS"
        assert record.solver == portfolio_label(("SLEEPY", "HQS"))
        assert record.result.stats["portfolio_winner"] == 1.0
        assert elapsed < 15.0  # the sleeper was cancelled, not awaited

    def test_all_losers_report_most_informative_status(self, unsat_instance):
        config = tiny_config(count=1, timeout=0.3)
        record = run_portfolio(
            unsat_instance, ("SLEEPY", "CRASHY"), config, grace=0.3
        )
        # TIMEOUT ranks above ERROR in the loss order
        assert record.result.status == TIMEOUT

    def test_suite_portfolio_records(self):
        config = tiny_config(count=1)
        records = run_suite_parallel(
            config, solvers=("HQS", "IDQ"), families=("adder",),
            jobs=2, portfolio=True,
        )
        assert len(records) == 1
        assert records[0].solver == portfolio_label(("HQS", "IDQ"))
        assert records[0].result.status in (SAT, UNSAT)


class TestSeedKnobs:
    def test_bench_seed_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "4242")
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        config = BenchConfig()
        assert config.seed == 4242
        assert config.jobs == 3

    def test_seed_kwarg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "4242")
        assert BenchConfig(seed=1).seed == 1

    def test_family_hash_is_process_stable(self):
        """Sharded workers must regenerate identical suites: the family
        stream may not depend on the per-process str hash randomization."""
        script = (
            "from repro.pec.families import generate_family;"
            "print([i.name for i in generate_family('adder', 3, seed=11)])"
        )
        names = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = (
                os.path.join(os.path.dirname(__file__), "..", "src")
                + os.pathsep + env.get("PYTHONPATH", "")
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            names.add(out.stdout.strip())
        assert len(names) == 1, f"suite depends on PYTHONHASHSEED: {names}"


class TestBenchCli:
    def test_bench_main_parallel_smoke(self, tmp_path, capsys):
        from repro.cli import bench_main

        path = str(tmp_path / "log.jsonl")
        code = bench_main([
            "--jobs", "2", "--families", "adder", "--count", "1",
            "--timeout", "10", "--solvers", "HQS,IDQ", "--log", path, "--table",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "records 2" in out
        assert "family" in out  # Table I header printed
        assert len(ResultLog(path).load()) == 2

    def test_bench_main_resume_requires_log(self, capsys):
        from repro.cli import bench_main

        assert bench_main(["--resume"]) == 2
