"""Tests for the AIG-backed state and the elimination-order heuristics."""

import pytest
from hypothesis import given, settings

from repro.core.elimination import universal_growth_estimate
from repro.core.hqs import HqsOptions, solve_dqbf
from repro.core.state import AigDqbf
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy
from test_elimination import state_of


class TestAigDqbf:
    def test_fresh_var_monotone(self):
        state = state_of(Dqbf.build([1], [(2, [1])], [[1, 2]]))
        first = state.fresh_var()
        second = state.fresh_var()
        assert second == first + 1

    def test_support_and_prune(self):
        formula = Dqbf.build([1, 2], [(3, [1]), (4, [2])], [[1, 3]])
        state = state_of(formula)
        assert state.support() == {1, 3}
        state.prune_prefix()
        assert state.prefix.universals == [1]
        assert state.prefix.existentials == [3]

    def test_is_constant(self):
        state = state_of(Dqbf.build([1], [(2, [1])], []))
        assert state.is_constant() is True
        state = state_of(Dqbf.build([1], [(2, [1])], [[]]))
        assert state.is_constant() is False
        state = state_of(Dqbf.build([1], [(2, [1])], [[1, 2]]))
        assert state.is_constant() is None

    def test_compact_preserves_function(self):
        formula = Dqbf.build([1, 2], [(3, [1, 2])], [[1, 3], [-2, 3]])
        state = state_of(formula)
        # create garbage
        state.aig.land(state.aig.var(9), state.aig.var(10))
        before = state.aig.num_nodes
        state.compact()
        assert state.aig.num_nodes < before
        assert state.evaluate({1: True, 2: False, 3: True})
        assert not state.evaluate({1: False, 2: True, 3: False})

    def test_matrix_size_constant_is_zero(self):
        state = state_of(Dqbf.build([1], [(2, [1])], []))
        assert state.matrix_size() == 0


class TestGrowthEstimate:
    def test_counts_dependent_and_nodes(self):
        # matrix: (x1 & y) | (x2 & z): two AND nodes depend on x1's side
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])], [[1], [3], [2, 4]]
        )
        state = state_of(formula)
        estimate = universal_growth_estimate(state, 2)
        assert estimate >= 1
        # variable not in the cone costs nothing
        formula2 = Dqbf.build([1, 2], [(3, [1])], [[1, 3]])
        state2 = state_of(formula2)
        assert universal_growth_estimate(state2, 2) == 0

    def test_constant_matrix(self):
        state = state_of(Dqbf.build([1], [(2, [1])], []))
        assert universal_growth_estimate(state, 1) == 0


class TestEliminationOrderOption:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            HqsOptions(elimination_order="alphabetical")

    @settings(max_examples=60, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_growth_order_agrees_with_oracle(self, formula):
        expected = "SAT" if expansion_solve(formula) else "UNSAT"
        result = solve_dqbf(
            formula.copy(), options=HqsOptions(elimination_order="growth")
        )
        assert result.status == expected


class TestAsciiScatter:
    def test_renders_marks(self):
        from repro.experiments.fig4 import ScatterPoint, ascii_scatter

        points = [
            ScatterPoint("a", "adder", 0.01, 1.0, "SAT", "SAT"),
            ScatterPoint("b", "adder", 0.02, 5.0, "UNSAT", "TIMEOUT"),
            ScatterPoint("c", "adder", 5.0, 0.01, "TIMEOUT", "UNSAT"),
        ]
        art = ascii_scatter(points)
        assert "*" in art and ">" in art and "<" in art
        assert "diagonal" in art

    def test_empty_points(self):
        from repro.experiments.fig4 import ascii_scatter

        assert ascii_scatter([]) == "(no points)"
