"""Anytime checkpoint/resume tests.

A checkpoint snapshots the elimination loop after each eliminated
universal; a resumed solve must reach the same verdict as a fresh one,
mismatched or corrupt files must fall back to a fresh solve, and a
completed solve must clean its checkpoint up.
"""

import json
import os

from hypothesis import given, settings

from conftest import dqbf_strategy
from repro.aig.cnf_bridge import cnf_to_aig
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    SolverCheckpoint,
    discard,
    formula_fingerprint,
)
from repro.core.hqs import HqsSolver
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.core.state import AigDqbf
from repro.formula.dqbf import Dqbf
from repro.formula.prefix import DependencyPrefix
from repro.pec.families import make_bitcell, make_comp


def _small_state() -> AigDqbf:
    clauses = [[1, 2, 3], [-1, -2, 4], [3, -4, 1], [-3, 4, -2]]
    aig, root = cnf_to_aig(clauses)
    prefix = DependencyPrefix()
    prefix.add_universal(1)
    prefix.add_universal(2)
    prefix.add_existential(3, [1])
    prefix.add_existential(4, [1, 2])
    return AigDqbf(aig, root, prefix, next_var=5)


class TestFingerprint:
    def test_stable_across_copies(self):
        formula = make_bitcell(4, 1, buggy=True, seed=5).formula
        assert formula_fingerprint(formula) == formula_fingerprint(formula.copy())

    def test_differs_across_instances(self):
        a = make_bitcell(4, 1, buggy=True, seed=5).formula
        b = make_bitcell(4, 1, buggy=False, seed=5).formula
        assert formula_fingerprint(a) != formula_fingerprint(b)


class TestFingerprintPublicApi:
    """formula_fingerprint is public API (service cache keys): canonical
    up to presentation order, sensitive to semantic edits, and stable
    across processes regardless of PYTHONHASHSEED."""

    UNIVERSALS = [1, 2]
    EXISTENTIALS = [(3, [1]), (4, [1, 2])]
    CLAUSES = [[1, -3, 4], [-1, 2, 3], [-2, -4], [3, 4, 1]]

    def base(self):
        return Dqbf.build(self.UNIVERSALS, self.EXISTENTIALS, self.CLAUSES)

    def test_reexported_from_core(self):
        from repro.core import formula_fingerprint as public
        assert public is formula_fingerprint

    def test_clause_reordering_is_canonical(self):
        shuffled = Dqbf.build(
            self.UNIVERSALS, self.EXISTENTIALS, list(reversed(self.CLAUSES))
        )
        assert formula_fingerprint(self.base()) == formula_fingerprint(shuffled)

    def test_literal_order_is_canonical(self):
        permuted = Dqbf.build(
            self.UNIVERSALS, self.EXISTENTIALS,
            [list(reversed(clause)) for clause in self.CLAUSES],
        )
        assert formula_fingerprint(self.base()) == formula_fingerprint(permuted)

    def test_declaration_order_is_canonical(self):
        permuted = Dqbf.build(
            list(reversed(self.UNIVERSALS)),
            list(reversed(self.EXISTENTIALS)),
            self.CLAUSES,
        )
        assert formula_fingerprint(self.base()) == formula_fingerprint(permuted)

    def test_matrix_edit_changes_fingerprint(self):
        edited = Dqbf.build(
            self.UNIVERSALS, self.EXISTENTIALS, self.CLAUSES + [[1, 2]]
        )
        assert formula_fingerprint(self.base()) != formula_fingerprint(edited)

    def test_dependency_edit_changes_fingerprint(self):
        edited = Dqbf.build(
            self.UNIVERSALS, [(3, [1, 2]), (4, [1, 2])], self.CLAUSES
        )
        assert formula_fingerprint(self.base()) != formula_fingerprint(edited)

    def test_stable_across_hashseed_processes(self):
        """Cache keys must agree between server restarts: the digest may
        not depend on the per-process str hash randomization."""
        import subprocess
        import sys

        script = (
            "from repro.core import formula_fingerprint;"
            "from repro.pec.families import make_bitcell;"
            "print(formula_fingerprint(make_bitcell(3, 1, True, seed=2).formula))"
        )
        digests = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = (
                os.path.join(os.path.dirname(__file__), "..", "src")
                + os.pathsep + env.get("PYTHONPATH", "")
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1, f"fingerprint depends on PYTHONHASHSEED: {digests}"


class TestRoundTrip:
    def test_capture_save_load_restore(self, tmp_path):
        state = _small_state()
        checkpoint = SolverCheckpoint.capture(
            fingerprint="fp",
            state=state,
            elimination_pool=[1, 2],
            eliminations={"universal": 3, "existential": 2},
            stats={"checkpoint_writes": 1, "label": "dropped-non-numeric"},
            elapsed=1.25,
            conflicts=17,
        )
        path = str(tmp_path / "state.ckpt")
        checkpoint.save(path)
        loaded = SolverCheckpoint.load(path)

        assert loaded.fingerprint == "fp"
        assert loaded.elimination_pool == [1, 2]
        assert loaded.eliminations == {"universal": 3, "existential": 2}
        assert loaded.elapsed == 1.25
        assert loaded.conflicts == 17
        # Non-numeric stats are filtered at capture time.
        assert "label" not in loaded.stats

        restored = loaded.restore_state()
        assert restored.prefix == state.prefix
        assert restored.next_var == state.next_var
        # The restored matrix is the same Boolean function (node
        # numbering may shift across the AIGER round trip).
        variables = sorted(state.aig.support(state.root))
        assert sorted(restored.aig.support(restored.root)) == variables
        for bits in range(1 << len(variables)):
            assignment = {
                var: bool(bits >> i & 1) for i, var in enumerate(variables)
            }
            assert restored.aig.evaluate(restored.root, assignment) == \
                state.aig.evaluate(state.root, assignment)

    def test_version_mismatch_rejected(self, tmp_path):
        state = _small_state()
        checkpoint = SolverCheckpoint.capture(
            fingerprint="fp", state=state, elimination_pool=[],
            eliminations={}, stats={}, elapsed=0.0, conflicts=0,
        )
        payload = checkpoint.as_dict()
        payload["version"] = CHECKPOINT_VERSION + 1
        path = tmp_path / "future.ckpt"
        path.write_text(json.dumps(payload))
        assert SolverCheckpoint.try_load(str(path)) is None

    def test_try_load_missing_corrupt_mismatched(self, tmp_path):
        missing = str(tmp_path / "nope.ckpt")
        assert SolverCheckpoint.try_load(missing) is None

        corrupt = tmp_path / "corrupt.ckpt"
        corrupt.write_text("{not json")
        assert SolverCheckpoint.try_load(str(corrupt)) is None

        state = _small_state()
        checkpoint = SolverCheckpoint.capture(
            fingerprint="right", state=state, elimination_pool=[],
            eliminations={}, stats={}, elapsed=0.0, conflicts=0,
        )
        path = str(tmp_path / "ok.ckpt")
        checkpoint.save(path)
        assert SolverCheckpoint.try_load(path, "wrong") is None
        assert SolverCheckpoint.try_load(path, "right") is not None

    def test_discard_tolerates_missing(self, tmp_path):
        discard(None)
        discard(str(tmp_path / "never-existed.ckpt"))

    @settings(max_examples=50, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_round_trip_preserves_state_property(self, formula):
        aig, root = cnf_to_aig(formula.matrix.clauses)
        prefix = formula.prefix
        next_var = max(prefix.all_variables() + [formula.matrix.num_vars, 0]) + 1
        state = AigDqbf(aig, root, prefix, next_var)

        checkpoint = SolverCheckpoint.capture(
            fingerprint=formula_fingerprint(formula), state=state,
            elimination_pool=list(prefix.universals), eliminations={},
            stats={}, elapsed=0.0, conflicts=0,
        )
        restored = SolverCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.as_dict()))
        ).restore_state()

        assert restored.prefix == state.prefix
        assert restored.next_var == state.next_var
        variables = sorted(state.aig.support(state.root)) if root > 1 else []
        assert (sorted(restored.aig.support(restored.root))
                if restored.root > 1 else []) == variables
        for bits in range(1 << len(variables)):
            assignment = {
                var: bool(bits >> i & 1) for i, var in enumerate(variables)
            }
            assert restored.aig.evaluate(restored.root, assignment) == \
                state.aig.evaluate(state.root, assignment)


class TestInterruptResume:
    def test_resume_reaches_fresh_verdict(self, tmp_path):
        instance = make_comp(6, 2, buggy=True, seed=11)
        formula = instance.formula
        path = str(tmp_path / "comp.ckpt")

        fresh = HqsSolver().solve(formula.copy(), Limits(time_limit=300))
        assert fresh.status in (SAT, UNSAT)

        # Interrupt deterministically: a node budget between the initial
        # and the peak matrix size lets some universals go through (each
        # writes a checkpoint) before the budget trips.
        interrupted = None
        for node_limit in (400, 800, 1600, 3200, 6400):
            candidate = HqsSolver().solve(
                formula.copy(),
                Limits(time_limit=300, node_limit=node_limit),
                checkpoint=path,
            )
            if candidate.status == UNKNOWN and os.path.exists(path):
                interrupted = candidate
                break
        assert interrupted is not None, "no node budget interrupted mid-solve"
        assert interrupted.stats.get("checkpoint_writes", 0) >= 1

        resumed = HqsSolver().solve(
            formula.copy(), Limits(time_limit=300), checkpoint=path
        )
        assert resumed.status == fresh.status
        assert resumed.stats.get("checkpoint_resumed") == 1
        assert resumed.stats.get("prior_elapsed", 0) > 0
        # Completed solve cleans up after itself.
        assert not os.path.exists(path)

    def test_checkpoint_removed_on_straight_success(self, tmp_path):
        formula = make_bitcell(4, 1, buggy=True, seed=62).formula
        path = str(tmp_path / "easy.ckpt")
        result = HqsSolver().solve(formula, Limits(time_limit=120), checkpoint=path)
        assert result.status in (SAT, UNSAT)
        assert not os.path.exists(path)

    def test_truncated_checkpoint_quarantined_fresh_solve(self, tmp_path):
        # A torn checkpoint save (crash mid-write) must cost a restart,
        # never a crash and never the answer: the solver diagnoses it,
        # quarantines the evidence and solves from scratch.
        target = make_bitcell(4, 1, buggy=True, seed=62)
        fingerprint = formula_fingerprint(target.formula)
        path = str(tmp_path / "torn.ckpt")
        SolverCheckpoint.capture(
            fingerprint=fingerprint, state=_small_state(),
            elimination_pool=[], eliminations={}, stats={},
            elapsed=0.0, conflicts=0,
        ).save(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])

        solver = HqsSolver()
        result = solver.solve(
            target.formula.copy(), Limits(time_limit=120), checkpoint=path
        )
        assert result.status == (SAT if target.expected else UNSAT)
        assert result.stats.get("checkpoint_corrupt") == 1
        assert "checkpoint_resumed" not in result.stats
        assert os.path.exists(path + ".corrupt")  # evidence survives

    def test_bitflipped_checkpoint_quarantined_fresh_solve(self, tmp_path):
        target = make_bitcell(4, 1, buggy=True, seed=62)
        fingerprint = formula_fingerprint(target.formula)
        path = str(tmp_path / "rot.ckpt")
        SolverCheckpoint.capture(
            fingerprint=fingerprint, state=_small_state(),
            elimination_pool=[], eliminations={}, stats={},
            elapsed=0.0, conflicts=0,
        ).save(path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF  # one rotted byte, same length
        with open(path, "wb") as handle:
            handle.write(bytes(blob))

        result = HqsSolver().solve(
            target.formula.copy(), Limits(time_limit=120), checkpoint=path
        )
        assert result.status == (SAT if target.expected else UNSAT)
        assert result.stats.get("checkpoint_corrupt") == 1
        assert os.path.exists(path + ".corrupt")

    def test_load_or_quarantine_diagnoses(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"\x00\x01 definitely not a checkpoint")
        loaded, diagnosis = SolverCheckpoint.load_or_quarantine(str(path))
        assert loaded is None
        assert diagnosis is not None and "quarantined" in diagnosis
        assert not path.exists()

        missing, diagnosis = SolverCheckpoint.load_or_quarantine(
            str(tmp_path / "never.ckpt")
        )
        assert missing is None and diagnosis is None  # absent != corrupt

    def test_mismatched_checkpoint_falls_back_to_fresh(self, tmp_path):
        other = make_bitcell(4, 1, buggy=False, seed=9).formula
        target = make_bitcell(4, 1, buggy=True, seed=62)
        path = str(tmp_path / "stale.ckpt")

        # Leave a checkpoint for a *different* formula at the path.
        state = _small_state()
        SolverCheckpoint.capture(
            fingerprint=formula_fingerprint(other), state=state,
            elimination_pool=[], eliminations={}, stats={},
            elapsed=0.0, conflicts=0,
        ).save(path)

        result = HqsSolver().solve(
            target.formula.copy(), Limits(time_limit=120), checkpoint=path
        )
        assert result.status == (SAT if target.expected else UNSAT)
        assert "checkpoint_resumed" not in result.stats
