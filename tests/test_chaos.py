"""Chaos tests: the serving stack under deterministic fault injection.

Every test schedules specific faults through :mod:`repro.faults` and
asserts the self-healing behaviour the service promises: crashed and
wedged workers are recycled (and the request answered with a diagnosed
``ERROR``/``TIMEOUT``, never a wrong verdict), torn disk writes are
caught by the CRC framing and quarantined, dropped response frames are
absorbed by the client's idempotent retry, and overload degrades into
explicit BUSY rejections instead of unbounded queues.

The larger randomized soak — hundreds of requests against a seeded
fault schedule, with every answer checked against a direct solve —
lives in ``benchmarks/bench_chaos.py``; these tests pin down each
mechanism in isolation so a soak failure has somewhere to point.
"""

from __future__ import annotations

import asyncio
import http.client
import os
import signal
import socket
import threading
import time

import pytest

from repro import faults
from repro.core.result import ERROR, TIMEOUT, UNKNOWN, UNSAT
from repro.experiments.parallel import ResultLog
from repro.faults import FaultPlan
from repro.formula.dqdimacs import write_dqdimacs
from repro.pec.families import make_adder
from repro.service import (
    ResultCache,
    ServiceBusyError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceProtocolError,
    ServiceServer,
    WorkerPool,
)


def family_text(size=4, boxes=2, buggy=True, seed=5):
    return write_dqdimacs(make_adder(size, boxes, buggy, seed=seed).formula)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def start_server(config, pool):
    """ServiceServer in a daemon thread (same shape as test_service)."""
    server = ServiceServer(config, pool)
    ready = threading.Event()
    box = {}

    def runner():
        async def go():
            await server.start()
            ready.set()
            return await server.serve(install_signals=False)

        box["summary"] = asyncio.run(go())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(10.0), "server failed to start"
    return server, box, thread


def stop_server(server, thread, pool):
    try:
        with ServiceClient(port=server.port, timeout=5.0, retries=0) as client:
            client.shutdown()
    except ServiceError:
        pass
    thread.join(timeout=15.0)
    if any(w.process.is_alive() for w in pool._workers):
        pool.kill()


# ----------------------------------------------------------------------
# pool self-healing
# ----------------------------------------------------------------------

class TestPoolFaults:
    def test_worker_crash_is_diagnosed_then_healed(self):
        plan = FaultPlan.parse("pool.solve:crash@1")
        pool = WorkerPool(size=1, fault_plan=plan)
        try:
            text = family_text()
            first = pool.solve(text, family="adder", time_limit=30.0)
            assert first["status"] == ERROR
            assert first["stats"].get("worker_died") == 1.0
            # The slot respawned and the schedule advanced past the
            # crash, so the retry gets the correct verdict.
            second = pool.solve(text, family="adder", time_limit=30.0)
            assert second["status"] == UNSAT
            assert pool.stats()["worker_deaths"] == 1
        finally:
            pool.kill()

    def test_wedged_worker_is_hard_killed(self):
        plan = FaultPlan.parse("pool.solve:wedge@1")
        pool = WorkerPool(size=1, fault_plan=plan, grace=0.3)
        try:
            text = family_text()
            first = pool.solve(text, family="adder", time_limit=0.3)
            assert first["status"] == TIMEOUT
            assert first["stats"].get("hard_timeout") == 1.0
            second = pool.solve(text, family="adder", time_limit=30.0)
            assert second["status"] == UNSAT
            assert pool.stats()["hard_kills"] == 1
        finally:
            pool.kill()

    def test_clock_fault_degrades_to_unknown_never_wrong(self):
        # Budget exhaustion: the collapsed clock trips the resource
        # guard, which must yield a *diagnosed* UNKNOWN — the answer a
        # retry can upgrade — not SAT/UNSAT by other means.
        plan = FaultPlan.parse("pool.solve:clock@1,seconds=0.001")
        pool = WorkerPool(size=1, fault_plan=plan)
        try:
            text = family_text()
            first = pool.solve(text, family="adder", time_limit=30.0)
            assert first["status"] == UNKNOWN
            second = pool.solve(text, family="adder", time_limit=30.0)
            assert second["status"] == UNSAT
        finally:
            pool.kill()

    def test_heartbeat_supervisor_restarts_dead_worker(self):
        pool = WorkerPool(size=1, heartbeat_interval=0.05)
        try:
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = pool.stats()
                if stats["supervised_restarts"] >= 1 and stats["alive"] == 1:
                    break
                time.sleep(0.05)
            stats = pool.stats()
            assert stats["supervised_restarts"] >= 1, stats
            assert stats["alive"] == 1, stats
            # The healed worker answers without any request having paid
            # for the corpse.
            assert pool.solve(family_text(), time_limit=30.0)["status"] == UNSAT
        finally:
            pool.kill()

    def test_circuit_breaker_opens_and_recovers(self):
        plan = FaultPlan.parse("pool.solve:crash@1x2")
        pool = WorkerPool(size=1, fault_plan=plan,
                          breaker_threshold=2, breaker_cooldown=0.2)
        try:
            text = family_text()
            for _ in range(2):  # consecutive worker deaths open the circuit
                assert pool.solve(text, family="adder",
                                  time_limit=30.0)["status"] == ERROR
            rejected = pool.solve(text, family="adder", time_limit=30.0)
            assert rejected["stats"].get("circuit_open") == 1.0
            assert "circuit breaker open" in rejected["error"]
            assert pool.stats()["breaker_opens"] == 1
            assert pool.stats()["breaker_rejections"] == 1
            assert pool.breaker_state()["adder"]["open"] == 1.0
            # After the cooldown the half-open probe (schedule is past
            # its crashes) succeeds and closes the circuit.
            time.sleep(0.25)
            probe = pool.solve(text, family="adder", time_limit=30.0)
            assert probe["status"] == UNSAT
            assert pool.breaker_state() == {}
        finally:
            pool.kill()

    def test_breaker_ignores_formula_level_failures(self):
        pool = WorkerPool(size=1, breaker_threshold=1)
        try:
            # A malformed formula fails *in* the worker (contained
            # ERROR) — the worker is healthy, the breaker must not trip.
            bad = pool.solve("p cnf 1 1\nnot a clause\n", family="adder")
            assert bad["status"] == ERROR
            assert pool.breaker_state() == {}
            assert pool.solve(family_text(), family="adder",
                              time_limit=30.0)["status"] == UNSAT
        finally:
            pool.kill()


# ----------------------------------------------------------------------
# client resilience
# ----------------------------------------------------------------------

class TestClientResilience:
    def test_mid_frame_eof_is_a_typed_error(self):
        # Regression: a reply cut off mid-frame used to surface as a
        # raw json.JSONDecodeError from deep inside the client.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_half_a_frame():
            conn, _ = listener.accept()
            conn.recv(65536)
            conn.sendall(b'{"id": 1, "ok": true, "status": "UNS')  # no \n
            conn.close()

        thread = threading.Thread(target=serve_half_a_frame, daemon=True)
        thread.start()
        try:
            with ServiceClient(port=port, timeout=5.0, retries=0) as client:
                with pytest.raises(ServiceProtocolError,
                                   match="mid-frame") as excinfo:
                    client.request({"op": "ping", "id": 1})
            assert excinfo.value.partial.startswith(b'{"id": 1')
            assert isinstance(excinfo.value, ServiceError)
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_dropped_response_frame_is_retried_idempotently(self, tmp_path):
        # The server solves, then the connection dies mid-reply.  The
        # client's resubmission must land on the cached result — one
        # solve, one answer, no duplicate work.
        pool = WorkerPool(size=1)
        config = ServiceConfig(port=0, workers=1,
                               cache_dir=str(tmp_path / "cache"),
                               drain_timeout=5.0)
        server, _box, thread = start_server(config, pool)
        faults.install(FaultPlan.parse("server.send:drop@1"))
        try:
            with ServiceClient(port=server.port, timeout=30.0,
                               retries=3) as client:
                reply = client.solve(family_text(), family="adder",
                                     timeout=30.0)
                assert reply["status"] == UNSAT
                assert reply["cache"] in ("hit", "disk", "coalesced")
                assert client.retried >= 1
                stats = client.stats()
                assert stats["pool"]["completed"] == 1  # solved exactly once
        finally:
            faults.clear()
            stop_server(server, thread, pool)

    def test_slow_send_fault_is_survived(self, tmp_path):
        pool = WorkerPool(size=1)
        config = ServiceConfig(port=0, workers=1, drain_timeout=5.0)
        server, _box, thread = start_server(config, pool)
        faults.install(FaultPlan.parse("server.send:slow@1,seconds=0.2"))
        try:
            with ServiceClient(port=server.port, timeout=30.0) as client:
                started = time.monotonic()
                reply = client.solve(family_text(), family="adder",
                                     timeout=30.0)
                assert reply["status"] == UNSAT
                assert time.monotonic() - started >= 0.2
        finally:
            faults.clear()
            stop_server(server, thread, pool)

    def test_deadline_bounds_total_retry_time(self):
        # Nothing listens on the port: every attempt fails fast, and
        # the deadline must cut the backoff schedule short.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.close()  # nothing will accept
        client = ServiceClient(port=port, timeout=0.2, retries=50,
                               backoff=0.05, deadline=0.5)
        started = time.monotonic()
        with pytest.raises(ServiceError):
            client.request({"op": "ping"})
        assert time.monotonic() - started < 5.0


# ----------------------------------------------------------------------
# backpressure + health probes
# ----------------------------------------------------------------------

class TestBackpressureAndHealth:
    @pytest.fixture
    def saturated_server(self, tmp_path):
        # max_pending=0: every genuinely new solve is an immediate BUSY.
        pool = WorkerPool(size=1)
        config = ServiceConfig(port=0, http_port=0, workers=1,
                               max_pending=0, drain_timeout=5.0)
        server, box, thread = start_server(config, pool)
        yield server
        stop_server(server, thread, pool)

    def test_busy_rejection_is_typed_and_counted(self, saturated_server):
        server = saturated_server
        with ServiceClient(port=server.port, retries=1,
                           backoff=0.01) as client:
            with pytest.raises(ServiceBusyError, match="busy"):
                client.solve(family_text(), family="adder", timeout=10.0)
            assert client.ping()["pong"] is True  # non-solve ops unaffected
            stats = client.stats()
            assert stats["busy_rejections"] >= 2  # initial try + retry
            assert stats["max_pending"] == 0

    def test_health_op_reports_not_ready(self, saturated_server):
        server = saturated_server
        with ServiceClient(port=server.port, retries=0) as client:
            health = client.health()
            assert health["live"] is True
            assert health["ready"] is False  # no queue headroom
            assert health["workers_alive"] == 1

    def test_http_healthz_and_readyz(self, saturated_server):
        server = saturated_server
        conn = http.client.HTTPConnection("127.0.0.1", server.http_port,
                                          timeout=10.0)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200  # alive even while saturated
            response.read()
            conn.request("GET", "/readyz")
            response = conn.getresponse()
            assert response.status == 503  # not ready: zero headroom
            response.read()
        finally:
            conn.close()

    def test_ready_server_reports_ready(self, tmp_path):
        pool = WorkerPool(size=1)
        config = ServiceConfig(port=0, http_port=0, workers=1,
                               drain_timeout=5.0)
        server, _box, thread = start_server(config, pool)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.http_port,
                                              timeout=10.0)
            try:
                conn.request("GET", "/readyz")
                assert conn.getresponse().status == 200
            finally:
                conn.close()
            with ServiceClient(port=server.port) as client:
                assert client.health()["ready"] is True
        finally:
            stop_server(server, thread, pool)


# ----------------------------------------------------------------------
# durability under disk faults
# ----------------------------------------------------------------------

class TestDiskFaults:
    def test_torn_cache_write_is_caught_and_counted(self, tmp_path):
        faults.install(FaultPlan.parse("cache.write:torn@1"))
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path))
        cache.store("aa", {"status": "SAT"})     # disk write torn
        cache.store("bb", {"status": "UNSAT"})   # evicts aa from memory
        assert cache.lookup("aa") is None        # torn entry must not serve
        stats = cache.stats.as_dict()
        assert stats["disk_corrupt"] == 1
        assert stats["disk_quarantined"] == 1
        assert (tmp_path / "aa.json.corrupt").exists()
        # The rerun writes a good entry over the quarantined slot.
        cache.store("aa", {"status": "SAT"})
        cache.store("bb", {"status": "UNSAT"})
        assert cache.lookup("aa")["cache"] == "disk"

    def test_cache_write_ioerror_is_counted_not_fatal(self, tmp_path):
        faults.install(FaultPlan.parse("cache.write:ioerror@1"))
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path))
        cache.store("aa", {"status": "SAT"})  # disk write fails, memory ok
        assert cache.stats.disk_write_errors == 1
        assert cache.lookup("aa")["cache"] == "hit"

    def test_startup_recovery_scan(self, tmp_path):
        from repro import durable

        good = ResultCache(capacity=4, disk_dir=str(tmp_path), recover=False)
        good.store("good", {"status": "SAT"})
        # A torn result, a garbage checkpoint and a leftover tmp file.
        blob = (tmp_path / "good.json").read_bytes()
        (tmp_path / "torn.json").write_bytes(blob[: len(blob) // 2])
        (tmp_path / "junk.ckpt").write_text("not json at all")
        (tmp_path / "dead.json.tmp.123").write_text("half a write")

        cache = ResultCache(capacity=4, disk_dir=str(tmp_path), recover=False)
        report = cache.recover()
        assert report == {"results_ok": 1, "checkpoints_ok": 0,
                          "quarantined": 2, "tmp_removed": 1}
        assert (tmp_path / ("torn.json" + durable.QUARANTINE_SUFFIX)).exists()
        assert (tmp_path / ("junk.ckpt" + durable.QUARANTINE_SUFFIX)).exists()
        assert not (tmp_path / "dead.json.tmp.123").exists()
        assert cache.stats.disk_corrupt == 2
        assert cache.lookup("good")["status"] == "SAT"

    def test_torn_log_append_is_detected_on_load(self, tmp_path):
        # The torn record must cost exactly itself: the appends around
        # it still load, and the loss is counted, not silent.
        faults.install(FaultPlan.parse("log.append:torn@2"))
        path = str(tmp_path / "results.jsonl")
        with ResultLog(path) as log:
            for index in range(3):
                log.append({"instance": f"i{index}", "solver": "HQS",
                            "status": "SAT"})
        loaded = ResultLog(path)
        done = loaded.load()
        assert set(done) == {("i0", "HQS"), ("i2", "HQS")}
        assert loaded.corrupt_lines == 1  # the torn record is counted

    def test_torn_tail_is_fenced_across_reopen(self, tmp_path):
        # A crash right after a torn append: the next session's writer
        # must not glue its first record onto the torn tail.
        faults.install(FaultPlan.parse("log.append:torn@1"))
        path = str(tmp_path / "results.jsonl")
        with ResultLog(path) as log:
            log.append({"instance": "torn", "solver": "HQS", "status": "SAT"})
        faults.clear()
        with ResultLog(path) as log:
            log.append({"instance": "after", "solver": "HQS", "status": "SAT"})
        loaded = ResultLog(path)
        assert set(loaded.load()) == {("after", "HQS")}
        assert loaded.corrupt_lines == 1

    def test_log_ioerror_fault_raises(self, tmp_path):
        faults.install(FaultPlan.parse("log.append:ioerror@1"))
        with ResultLog(str(tmp_path / "x.jsonl")) as log:
            with pytest.raises(OSError, match="injected"):
                log.append({"instance": "i", "solver": "S", "status": "SAT"})


# ----------------------------------------------------------------------
# stats surface
# ----------------------------------------------------------------------

class TestStatsSurface:
    def test_stats_op_exposes_durability_and_supervision_counters(
        self, tmp_path
    ):
        pool = WorkerPool(size=1, heartbeat_interval=0.5)
        config = ServiceConfig(port=0, workers=1,
                               cache_dir=str(tmp_path / "cache"),
                               drain_timeout=5.0)
        server, _box, thread = start_server(config, pool)
        try:
            with ServiceClient(port=server.port) as client:
                stats = client.stats()
            for key in ("disk_corrupt", "disk_quarantined",
                        "disk_write_errors"):
                assert key in stats["cache"], stats["cache"]
            for key in ("heartbeats", "heartbeat_failures",
                        "supervised_restarts", "breaker_opens",
                        "breaker_rejections", "backoff_slept_s"):
                assert key in stats["pool"], stats["pool"]
            for key in ("pending", "max_pending", "busy_rejections"):
                assert key in stats, stats
        finally:
            stop_server(server, thread, pool)
