"""Fused AIG kernel: equivalence with the naive rebuild path + caches.

The fused primitives (``restrict``, ``cofactor2``,
``eliminate_universal_fused``) and the batched unit/pure application
must compute exactly the functions of the naive ``cofactor``/``rename``
chains they replace.  Equivalence is checked property-style with
``Aig.evaluate`` under random assignments, on random expression AIGs
and on random DQBFs.
"""

import itertools
import random

from hypothesis import given, settings

from repro.aig.cnf_bridge import cnf_to_aig
from repro.aig.graph import FALSE, TRUE, Aig, complement
from repro.core.elimination import eliminate_universal
from repro.core.hqs import HqsOptions, HqsSolver
from repro.core.state import AigDqbf
from repro.core.unitpure import UnitPureStats, apply_unit_pure
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy, random_dqbf


def random_edge(aig: Aig, rng: random.Random, variables, depth: int) -> int:
    if depth == 0 or rng.random() < 0.3:
        edge = aig.var(rng.choice(variables))
        return complement(edge) if rng.random() < 0.5 else edge
    op = rng.choice(["and", "or", "xor"])
    a = random_edge(aig, rng, variables, depth - 1)
    b = random_edge(aig, rng, variables, depth - 1)
    return {"and": aig.land, "or": aig.lor, "xor": aig.lxor}[op](a, b)


def assignments(variables, rng: random.Random, samples: int = 16):
    """All assignments when small, a random sample otherwise."""
    variables = sorted(variables)
    if len(variables) <= 6:
        for values in itertools.product([False, True], repeat=len(variables)):
            yield dict(zip(variables, values))
    else:
        for _ in range(samples):
            yield {v: rng.random() < 0.5 for v in variables}


def equivalent(aig_a: Aig, root_a: int, aig_b: Aig, root_b: int, variables, rng) -> bool:
    for assignment in assignments(variables, rng):
        va = (root_a == TRUE) if root_a in (TRUE, FALSE) else aig_a.evaluate(root_a, assignment)
        vb = (root_b == TRUE) if root_b in (TRUE, FALSE) else aig_b.evaluate(root_b, assignment)
        if va != vb:
            return False
    return True


def state_of(formula: Dqbf) -> AigDqbf:
    aig, root = cnf_to_aig(formula.matrix.clauses)
    next_var = max([formula.matrix.num_vars] + formula.prefix.all_variables()) + 1
    return AigDqbf(aig, root, formula.prefix.copy(), next_var)


class TestFusedPrimitives:
    def test_cofactor2_matches_naive_cofactors(self):
        rng = random.Random(1)
        variables = [1, 2, 3, 4, 5]
        for _ in range(40):
            aig = Aig()
            root = random_edge(aig, rng, variables, depth=4)
            var = rng.choice(variables)
            cof0, cof1 = aig.cofactor2(root, var)
            assert cof0 == aig.cofactor(root, var, False)
            assert cof1 == aig.cofactor(root, var, True)

    def test_cofactor2_shares_independent_cone(self):
        aig = Aig()
        a, b, c = aig.var(1), aig.var(2), aig.var(3)
        heavy = aig.land(aig.lor(a, b), aig.lxor(a, b))  # no 3 anywhere
        root = aig.land(heavy, c)
        cof0, cof1 = aig.cofactor2(root, 3)
        assert cof0 == FALSE
        assert cof1 == heavy  # shared verbatim, not rebuilt

    def test_restrict_matches_cofactor_chain(self):
        rng = random.Random(2)
        variables = [1, 2, 3, 4, 5, 6]
        for _ in range(40):
            aig = Aig()
            root = random_edge(aig, rng, variables, depth=4)
            chosen = rng.sample(variables, rng.randint(1, 3))
            assignment = {v: rng.random() < 0.5 for v in chosen}
            fused = aig.restrict(root, assignment)
            naive = root
            for var, value in assignment.items():
                naive = aig.cofactor(naive, var, value)
            assert fused == naive

    def test_restrict_untouched_support_is_identity(self):
        aig = Aig()
        root = aig.land(aig.var(1), aig.var(2))
        assert aig.restrict(root, {7: True, 9: False}) == root
        assert aig.restrict(root, {}) == root

    def test_exists_forall_still_correct(self):
        rng = random.Random(3)
        variables = [1, 2, 3, 4]
        for _ in range(25):
            aig = Aig()
            root = random_edge(aig, rng, variables, depth=3)
            var = rng.choice(variables)
            ex = aig.exists(root, var)
            fa = aig.forall(root, var)
            for assignment in assignments(set(variables) - {var}, rng):
                branches = [
                    aig.evaluate(root, {**assignment, var: value})
                    if root not in (TRUE, FALSE)
                    else root == TRUE
                    for value in (False, True)
                ]
                want_ex = branches[0] or branches[1]
                want_fa = branches[0] and branches[1]
                got_ex = ex == TRUE if ex in (TRUE, FALSE) else aig.evaluate(ex, assignment)
                got_fa = fa == TRUE if fa in (TRUE, FALSE) else aig.evaluate(fa, assignment)
                assert got_ex == want_ex
                assert got_fa == want_fa


class TestFusedElimination:
    @settings(max_examples=40, deadline=None)
    @given(formula=dqbf_strategy())
    def test_theorem1_fused_equals_naive(self, formula):
        """One Theorem-1 step: fused and naive produce the same function."""
        rng = random.Random(4)
        universal = formula.prefix.universals[0]
        fused_state = state_of(formula.copy())
        naive_state = state_of(formula.copy())
        fused_copies = eliminate_universal(fused_state, universal, fused=True)
        naive_copies = eliminate_universal(naive_state, universal, fused=False)

        assert set(fused_copies) == set(naive_copies)
        # Copy *names* may differ between the paths; align them.
        fused_to_naive = {
            fused_copies[y]: naive_copies[y] for y in fused_copies
        }
        if fused_state.root > 1:
            aligned = fused_state.aig.rename(fused_state.root, fused_to_naive)
        else:
            aligned = fused_state.root
        support = set()
        if naive_state.root > 1:
            support |= naive_state.aig.support(naive_state.root)
        if aligned > 1:
            support |= fused_state.aig.support(aligned)
        assert equivalent(
            fused_state.aig, aligned, naive_state.aig, naive_state.root, support, rng
        )
        # And the prefix bookkeeping must agree — modulo the same copy-name
        # alignment (the fused kernel may burn fresh numbers on copies that
        # do not survive simplification, so the raw ids can differ).
        assert set(fused_state.prefix.universals) == set(naive_state.prefix.universals)
        aligned_existentials = {
            fused_to_naive.get(y, y) for y in fused_state.prefix.existentials
        }
        assert aligned_existentials == set(naive_state.prefix.existentials)
        for y in fused_copies:
            assert fused_state.prefix.dependencies(
                fused_copies[y]
            ) == naive_state.prefix.dependencies(naive_copies[y])

    def test_copies_only_for_occurring_dependents(self):
        # Matrix (x | y2) & (!x | y3): the 1-cofactor is just y3, so only
        # y3 gets a copy even though y2 also depends on x (naive behaviour).
        formula = Dqbf.build([1], [(2, [1]), (3, [1])], [[1, 2], [-1, 3]])
        state = state_of(formula)
        copies = eliminate_universal(state, 1, fused=True)
        assert 2 not in copies
        assert 3 in copies


class TestBatchedUnitPure:
    @settings(max_examples=40, deadline=None)
    @given(formula=dqbf_strategy(max_universals=3, max_existentials=3))
    def test_batched_equals_naive(self, formula):
        rng = random.Random(5)
        batched_state = state_of(formula.copy())
        naive_state = state_of(formula.copy())
        batched_outcome = apply_unit_pure(batched_state, UnitPureStats(), batched=True)
        naive_outcome = apply_unit_pure(naive_state, UnitPureStats(), batched=False)
        assert batched_outcome == naive_outcome
        # On the UNSAT short-circuit the paths may abort mid-round with
        # different partial states; the solver discards them either way.
        if batched_outcome is None:
            assert set(batched_state.prefix.universals) == set(
                naive_state.prefix.universals
            )
            assert set(batched_state.prefix.existentials) == set(
                naive_state.prefix.existentials
            )
            support = set()
            if batched_state.root > 1:
                support |= batched_state.aig.support(batched_state.root)
            if naive_state.root > 1:
                support |= naive_state.aig.support(naive_state.root)
            assert equivalent(
                batched_state.aig,
                batched_state.root,
                naive_state.aig,
                naive_state.root,
                support,
                rng,
            )

    def test_universal_unit_still_unsat(self):
        # forall x: x & (...)  -> universal unit, immediately UNSAT.
        formula = Dqbf.build([1], [(2, [1])], [[1], [1, 2]])
        state = state_of(formula)
        assert apply_unit_pure(state, UnitPureStats(), batched=True) is False


class TestSolverEquivalence:
    def test_fused_and_naive_agree_with_oracle(self, rng):
        for _ in range(30):
            formula = random_dqbf(rng)
            expected = expansion_solve(formula.copy())
            for fused in (True, False):
                options = HqsOptions(use_fused_kernel=fused)
                result = HqsSolver(options).solve(formula.copy())
                assert result.solved
                assert (result.status == "SAT") == expected, (
                    f"kernel fused={fused} disagrees with oracle on {formula!r}"
                )


class TestKernelStats:
    def test_solve_result_has_kernel_counters(self, rng):
        # Preprocessing off so the AIG kernel is guaranteed to run.
        formula = random_dqbf(rng)
        result = HqsSolver(HqsOptions(use_preprocessing=False)).solve(formula.copy())
        for key in (
            "kernel_rebuild_passes",
            "kernel_fused_passes",
            "kernel_nodes_visited",
            "kernel_nodes_shared",
            "kernel_strash_lookups",
            "kernel_strash_hits",
            "kernel_strash_hit_rate",
            "kernel_support_cache_hit_rate",
            "kernel_unitpure_cache_hit_rate",
        ):
            assert key in result.stats, f"missing {key}"
        assert 0.0 <= result.stats["kernel_strash_hit_rate"] <= 1.0

    def test_trace_mentions_kernel(self, rng):
        solver = HqsSolver(HqsOptions(use_preprocessing=False), trace=True)
        solver.solve(random_dqbf(rng).copy())
        assert any("kernel" in line for line in solver.trace)

    def test_sat_service_counters_on_both_kernel_paths(self, rng):
        # The incremental SAT service is orthogonal to the kernel choice:
        # sat_* counters must appear on the fused and the naive path alike.
        formula = random_dqbf(rng)
        for fused in (True, False):
            options = HqsOptions(use_preprocessing=False, use_fused_kernel=fused)
            result = HqsSolver(options).solve(formula.copy())
            for key in (
                "sat_queries",
                "sat_conflicts",
                "sat_clauses_encoded",
                "sat_encode_cache_hits",
                "sat_learnts_reused",
                "sat_counterexamples",
                "sat_rebinds",
                "sat_session_persistent",
            ):
                assert key in result.stats, f"missing {key} (fused={fused})"
            assert result.stats["sat_session_persistent"] == 1

    def test_sat_session_disabled_still_exports_counters(self, rng):
        options = HqsOptions(use_preprocessing=False, use_sat_session=False)
        result = HqsSolver(options).solve(random_dqbf(rng).copy())
        assert result.stats["sat_session_persistent"] == 0
        assert "sat_queries" in result.stats


class TestMetadataCache:
    def test_support_of_matches_naive_support(self):
        rng = random.Random(6)
        variables = [1, 2, 3, 4, 5]
        for _ in range(25):
            aig = Aig()
            root = random_edge(aig, rng, variables, depth=4)
            want = {
                aig._input_label[n]
                for n in aig.cone_nodes(root)
                if aig.is_input(n)
            }
            assert aig.support_of(root) == frozenset(want)
            # second query is a pure cache hit
            before = aig.counters.support_cache_misses
            assert aig.support_of(root) == frozenset(want)
            assert aig.counters.support_cache_misses == before

    def test_level_of(self):
        aig = Aig()
        a, b, c = aig.var(1), aig.var(2), aig.var(3)
        assert aig.level_of(a) == 0
        ab = aig.land(a, b)
        assert aig.level_of(ab) == 1
        assert aig.level_of(aig.land(ab, c)) == 2
        assert aig.level_of(FALSE) == 0

    def test_extract_bumps_generation_and_keeps_counters(self):
        aig = Aig()
        root = aig.land(aig.var(1), aig.var(2))
        aig.support_of(root)
        generation = aig.cache_generation
        counters = aig.counters
        fresh, (new_root,) = aig.extract([root])
        assert fresh.cache_generation == generation + 1
        assert fresh.counters is counters  # shared accounting
        assert fresh.support_of(new_root) == frozenset({1, 2})

    def test_invalidate_caches(self):
        aig = Aig()
        root = aig.land(aig.var(1), aig.var(2))
        assert aig.support_of(root) == frozenset({1, 2})
        generation = aig.cache_generation
        aig.invalidate_caches()
        assert aig.cache_generation == generation + 1
        assert aig.support_of(root) == frozenset({1, 2})

    def test_matrix_size_cache_invalidated_on_root_change(self):
        formula = Dqbf.build([1], [(2, [1])], [[1, 2], [-1, 2]])
        state = state_of(formula)
        first = state.matrix_size()
        assert state.matrix_size() == first  # memoized
        state.root = state.aig.cofactor(state.root, 1, True)
        assert state.matrix_size() == state.aig.cone_size(state.root)
        state.root = TRUE
        assert state.matrix_size() == 0
