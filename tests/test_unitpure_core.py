"""Tests for Theorem 5 application (unit/pure elimination on the state)."""

from hypothesis import given, settings

from repro.core.unitpure import UnitPureStats, apply_unit_pure
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy
from test_elimination import state_of, state_truth


class TestRules:
    def test_existential_unit_assigned(self):
        formula = Dqbf.build([1], [(2, [1])], [[2], [-2, 1]])
        state = state_of(formula)
        decided = apply_unit_pure(state)
        # y := 1 leaves clause (x1): universal unit -> UNSAT overall
        assert decided is False

    def test_universal_unit_unsat(self):
        formula = Dqbf.build([1], [(2, [1])], [[1], [2, -1]])
        state = state_of(formula)
        assert apply_unit_pure(state) is False

    def test_existential_pure_assigned(self):
        formula = Dqbf.build([1], [(2, [1])], [[2, 1], [2, -1]])
        state = state_of(formula)
        decided = apply_unit_pure(state)
        # y positive pure -> y := 1 satisfies everything
        assert decided is True

    def test_universal_pure_adverse_value(self):
        # x occurs only positively: set x := 0 (the adverse value)
        formula = Dqbf.build([1, 2], [(3, [1, 2])], [[1, 3], [2, 3]])
        state = state_of(formula)
        stats = UnitPureStats()
        decided = apply_unit_pure(state, stats)
        # x1 := 0 and x2 := 0 force y unit -> SAT via y := 1
        assert decided is True
        assert stats.pures_eliminated + stats.units_eliminated >= 1

    def test_no_change_returns_none(self):
        formula = Dqbf.build([1], [(2, [1])], [[-2, 1], [2, -1]])
        state = state_of(formula)
        assert apply_unit_pure(state) is None

    def test_stats_counters(self):
        formula = Dqbf.build([1], [(2, []), (3, [])], [[2], [3, 1], [3, -1]])
        state = state_of(formula)
        stats = UnitPureStats()
        apply_unit_pure(state, stats)
        assert stats.rounds >= 1
        assert stats.units_eliminated >= 1


class TestSoundness:
    @settings(max_examples=120, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_preserves_truth(self, formula):
        expected = expansion_solve(formula)
        state = state_of(formula)
        decided = apply_unit_pure(state)
        if decided is not None:
            assert decided == expected
        else:
            state.prune_prefix()
            assert state_truth(state) == expected
