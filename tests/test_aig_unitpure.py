"""Tests for syntactic unit/pure detection on AIGs (Theorem 6)."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.graph import FALSE, TRUE, Aig, complement
from repro.aig.unitpure import detect_unit_pure, find_pures, find_units

from test_aig_graph import random_edge


def build_fig1(aig: Aig):
    """The CNF of Fig. 1: (y1|x1)(y1|x2)(y2|!x1)(y2|!x2) with
    y1=var1, y2=var2, x1=var3, x2=var4."""
    y1, y2, x1, x2 = (aig.var(v) for v in (1, 2, 3, 4))
    return aig.land_many(
        [
            aig.lor(y1, x1),
            aig.lor(y1, x2),
            aig.lor(y2, complement(x1)),
            aig.lor(y2, complement(x2)),
        ]
    )


class TestUnits:
    def test_top_level_conjunct_is_positive_unit(self):
        aig = Aig()
        f = aig.land(aig.var(1), aig.lor(aig.var(2), aig.var(3)))
        units = find_units(aig, f)
        assert units == {1: True}

    def test_negated_conjunct_is_negative_unit(self):
        aig = Aig()
        f = aig.land(complement(aig.var(1)), aig.var(2))
        units = find_units(aig, f)
        assert units == {1: False, 2: True}

    def test_nested_conjunction_found(self):
        aig = Aig()
        f = aig.land(
            aig.land(aig.var(1), aig.var(2)),
            aig.land(aig.var(3), complement(aig.var(4))),
        )
        units = find_units(aig, f)
        assert units == {1: True, 2: True, 3: True, 4: False}

    def test_complemented_root_blocks_units(self):
        aig = Aig()
        f = complement(aig.land(aig.var(1), aig.var(2)))
        assert find_units(aig, f) == {}

    def test_negated_input_root(self):
        aig = Aig()
        f = complement(aig.var(5))
        assert find_units(aig, f) == {5: False}

    def test_input_root(self):
        aig = Aig()
        assert find_units(aig, aig.var(5)) == {5: True}

    def test_constants_have_no_units(self):
        aig = Aig()
        assert find_units(aig, TRUE) == {}
        assert find_units(aig, FALSE) == {}

    def test_disjunction_has_no_units(self):
        aig = Aig()
        f = aig.lor(aig.var(1), aig.var(2))
        assert find_units(aig, f) == {}


class TestPures:
    def test_fig1_detects_pure(self):
        """Example 4: the syntactic check finds y2 positive pure (and in our
        OR-based construction also y1); x1, x2 occur in both phases."""
        aig = Aig()
        f = build_fig1(aig)
        pures = find_pures(aig, f)
        assert pures.get(2) is True
        assert 3 not in pures
        assert 4 not in pures

    def test_single_phase_variable(self):
        aig = Aig()
        f = aig.lor(aig.var(1), aig.land(aig.var(1), aig.var(2)))
        pures = find_pures(aig, f)
        assert pures.get(1) is True

    def test_negative_pure(self):
        aig = Aig()
        f = aig.land(complement(aig.var(1)), aig.lor(complement(aig.var(1)), aig.var(2)))
        pures = find_pures(aig, f)
        assert pures.get(1) is False

    def test_mixed_phase_not_pure(self):
        aig = Aig()
        f = aig.lxor(aig.var(1), aig.var(2))
        pures = find_pures(aig, f)
        assert 1 not in pures and 2 not in pures


class TestSemanticSoundness:
    """The syntactic checks are incomplete but must never be wrong."""

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10**6))
    def test_units_are_semantically_forced(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        e = random_edge(aig, rng, variables, 3)
        units = find_units(aig, e)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            if e not in (TRUE, FALSE) and aig.evaluate(e, assignment):
                for var, forced in units.items():
                    assert assignment[var] == forced

    @settings(max_examples=120, deadline=None)
    @given(st.integers(0, 10**6))
    def test_pures_are_semantically_monotone(self, seed):
        """If v is positive pure, raising v never falsifies the formula."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        e = random_edge(aig, rng, variables, 3)
        if e in (TRUE, FALSE):
            return
        pures = find_pures(aig, e)
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            if aig.evaluate(e, assignment):
                for var, polarity in pures.items():
                    pushed = {**assignment, var: polarity}
                    assert aig.evaluate(e, pushed)

    def test_detect_unit_pure_units_take_precedence(self):
        aig = Aig()
        f = aig.land(aig.var(1), aig.var(2))
        info = detect_unit_pure(aig, f)
        assert set(info.units) == {1, 2}
        assert not set(info.pures) & set(info.units)

    def test_bool_protocol(self):
        aig = Aig()
        assert not detect_unit_pure(aig, TRUE)
        f = aig.land(aig.var(1), aig.var(2))
        assert detect_unit_pure(aig, f)
