"""Tests for the iDQ-style instantiation and [10]-style expansion baselines."""

from hypothesis import given, settings

from repro.baselines.expansion import expansion_options, solve_expansion
from repro.baselines.idq import IdqSolver
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


class TestIdq:
    @settings(max_examples=100, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_matches_oracle(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        result = IdqSolver().solve(formula.copy())
        assert result.status == expected

    def test_trivially_unsat_single_round(self):
        """A clause set falsified under the all-zero instantiation refutes in
        the very first ground solve — the paper's 'single SAT call' case."""
        formula = Dqbf.build([1, 2], [(3, [1])], [[3], [-3]])
        solver = IdqSolver()
        result = solver.solve(formula)
        assert result.status == UNSAT
        assert result.stats["instantiation_rounds"] <= 1

    def test_sat_requires_verification_round(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],
        )
        solver = IdqSolver()
        result = solver.solve(formula)
        assert result.status == SAT
        assert result.stats["instantiation_rounds"] >= 1
        assert result.stats["atoms"] >= 2

    def test_empty_matrix(self):
        formula = Dqbf.build([1], [(2, [1])], [])
        assert IdqSolver().solve(formula).status == SAT

    def test_timeout(self):
        from repro.pec.families import make_comp

        formula = make_comp(8, 3, buggy=False, seed=3).formula
        result = IdqSolver().solve(formula, Limits(time_limit=0.01))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource == "time"

    def test_instance_atom_sharing(self):
        """Universal branches agreeing on D_y must share the y atom: with
        D_y = {} there is exactly one atom no matter how many universals."""
        formula = Dqbf.build([1, 2], [(3, [])], [[3, 1, 2]])
        solver = IdqSolver()
        result = solver.solve(formula)
        assert result.status == SAT
        assert result.stats["atoms"] <= 1


class TestExpansionBaseline:
    @settings(max_examples=100, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_matches_oracle(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        result = solve_expansion(formula.copy())
        assert result.status == expected

    def test_options_disable_hqs_features(self):
        options = expansion_options()
        assert not options.use_maxsat_selection
        assert not options.use_qbf_backend
        assert not options.use_unit_pure

    def test_timeout(self):
        from repro.pec.families import make_comp

        formula = make_comp(8, 3, buggy=False, seed=3).formula
        result = solve_expansion(formula, Limits(time_limit=0.0))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource == "time"
