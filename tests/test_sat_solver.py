"""Tests for the CDCL SAT solver (against the DPLL oracle and by hand)."""

import pytest
from hypothesis import given, settings

from repro.sat.simple import dpll_solve
from repro.sat.solver import SAT, UNKNOWN, UNSAT, CdclSolver, _luby, solve_cnf

from conftest import cnf_strategy


def php_clauses(holes: int):
    """Pigeonhole principle with holes+1 pigeons (classically UNSAT)."""
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve_cnf([])[0] == SAT

    def test_single_unit(self):
        status, model = solve_cnf([[4]])
        assert status == SAT
        assert model[4] is True

    def test_conflicting_units(self):
        assert solve_cnf([[1], [-1]])[0] == UNSAT

    def test_empty_clause_rejected(self):
        solver = CdclSolver()
        assert solver.add_clause([]) is False
        assert solver.solve() == UNSAT

    def test_tautological_clause_ignored(self):
        solver = CdclSolver()
        solver.add_clause([1, -1])
        assert solver.solve() == SAT

    def test_duplicate_literals_collapse(self):
        status, model = solve_cnf([[2, 2, 2]])
        assert status == SAT and model[2]

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CdclSolver().add_clause([1, 0])

    def test_model_satisfies_formula(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [2, 3]]
        status, model = solve_cnf(clauses)
        assert status == SAT
        for clause in clauses:
            assert any((lit > 0) == model[abs(lit)] for lit in clause)


class TestVersusOracle:
    @settings(max_examples=200, deadline=None)
    @given(cnf_strategy(max_vars=10, max_clauses=45))
    def test_agrees_with_dpll(self, clauses):
        status, model = solve_cnf(clauses)
        oracle = dpll_solve(clauses)
        assert status == (SAT if oracle is not None else UNSAT)
        if status == SAT:
            for clause in clauses:
                assert any((lit > 0) == model[abs(lit)] for lit in clause)


class TestLearning:
    def test_pigeonhole_unsat(self):
        assert solve_cnf(php_clauses(5))[0] == UNSAT

    def test_statistics_populated(self):
        solver = CdclSolver()
        solver.add_clauses(php_clauses(4))
        solver.solve()
        stats = solver.statistics
        assert stats["conflicts"] > 0
        assert stats["decisions"] > 0

    def test_conflict_limit_returns_unknown(self):
        solver = CdclSolver()
        solver.add_clauses(php_clauses(7))
        assert solver.solve(conflict_limit=5) in (UNKNOWN, UNSAT)

    def test_deadline_returns_unknown(self):
        import time

        solver = CdclSolver()
        solver.add_clauses(php_clauses(9))
        status = solver.solve(deadline=time.monotonic() + 0.05)
        assert status in (UNKNOWN, UNSAT)


class TestAssumptions:
    def test_assumption_forces_branch(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]) == SAT
        assert solver.model()[2] is True

    def test_unsat_under_assumptions_recoverable(self):
        solver = CdclSolver()
        solver.add_clauses([[1, 2], [-1, 2]])
        assert solver.solve([-2]) == UNSAT
        assert solver.solve([2]) == SAT
        assert solver.solve() == SAT

    def test_failed_assumptions_form_core(self):
        solver = CdclSolver()
        solver.add_clauses([[-1, -2], [3]])
        assert solver.solve([1, 2]) == UNSAT
        core = set(solver.failed_assumptions())
        assert core <= {1, 2}
        assert core  # non-empty

    def test_core_is_unsat_with_clauses(self, rng):
        from conftest import random_clauses

        for _ in range(60):
            clauses = random_clauses(rng, 8, rng.randint(3, 30))
            assumptions = []
            seen = set()
            for _ in range(rng.randint(1, 4)):
                v = rng.randint(1, 8)
                if v not in seen:
                    seen.add(v)
                    assumptions.append(rng.choice([v, -v]))
            solver = CdclSolver()
            solver.add_clauses(clauses)
            if solver.solve(assumptions) == UNSAT and solver._ok:
                core = solver.failed_assumptions()
                assert set(core) <= set(assumptions)
                assert dpll_solve(clauses + [[a] for a in core]) is None

    def test_incremental_clause_addition(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        solver.add_clause([-1])
        assert solver.solve() == SAT
        assert solver.model()[2] is True
        solver.add_clause([-2])
        assert solver.solve() == UNSAT


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
