"""Shared test helpers: random-formula builders and hypothesis strategies."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.formula.dqbf import Dqbf


def random_clauses(rng: random.Random, num_vars: int, num_clauses: int, max_len: int = 3):
    """Plain random k-CNF clauses over variables 1..num_vars."""
    clauses = []
    for _ in range(num_clauses):
        k = rng.randint(1, max_len)
        clauses.append(
            [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(k)]
        )
    return clauses


def random_dqbf(rng: random.Random, max_universals: int = 3, max_existentials: int = 3,
                max_clauses: int = 10) -> Dqbf:
    """A small random DQBF suitable for oracle cross-checking."""
    nu = rng.randint(1, max_universals)
    ne = rng.randint(1, max_existentials)
    universals = list(range(1, nu + 1))
    existentials = []
    for i in range(ne):
        deps = [x for x in universals if rng.random() < 0.6]
        existentials.append((nu + 1 + i, deps))
    clauses = random_clauses(rng, nu + ne, rng.randint(1, max_clauses))
    return Dqbf.build(universals, existentials, clauses)


@st.composite
def dqbf_strategy(draw, max_universals: int = 3, max_existentials: int = 3,
                  max_clauses: int = 8):
    """Hypothesis strategy producing small closed DQBFs."""
    nu = draw(st.integers(1, max_universals))
    ne = draw(st.integers(1, max_existentials))
    universals = list(range(1, nu + 1))
    existentials = []
    for i in range(ne):
        deps = draw(st.lists(st.sampled_from(universals), unique=True, max_size=nu))
        existentials.append((nu + 1 + i, deps))
    num_vars = nu + ne
    literals = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literals, min_size=1, max_size=3),
            min_size=1,
            max_size=max_clauses,
        )
    )
    return Dqbf.build(universals, existentials, clauses)


@st.composite
def cnf_strategy(draw, max_vars: int = 10, max_clauses: int = 40, max_len: int = 4):
    """Hypothesis strategy for plain CNF clause lists."""
    num_vars = draw(st.integers(1, max_vars))
    literals = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    return draw(
        st.lists(
            st.lists(literals, min_size=1, max_size=max_len),
            min_size=1,
            max_size=max_clauses,
        )
    )


def random_qbf(rng: random.Random, max_vars: int = 6, max_clauses: int = 12):
    """A small random prenex CNF QBF with alternating blocks."""
    from repro.formula.prefix import EXISTS, FORALL
    from repro.formula.qbf import Qbf

    num_vars = rng.randint(2, max_vars)
    variables = list(range(1, num_vars + 1))
    rng.shuffle(variables)
    blocks = []
    index = 0
    quantifier = rng.choice([EXISTS, FORALL])
    while index < num_vars:
        size = rng.randint(1, num_vars - index)
        blocks.append((quantifier, variables[index : index + size]))
        quantifier = FORALL if quantifier == EXISTS else EXISTS
        index += size
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(rng.randint(1, 3))]
        for _ in range(rng.randint(1, max_clauses))
    ]
    return Qbf.build(blocks, clauses)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20150309)  # DATE'15 conference date
