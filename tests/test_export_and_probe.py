"""Tests for the suite exporter and the Section-IV SAT probe option."""

import os

from hypothesis import given, settings

from repro.core.hqs import HqsOptions, solve_dqbf
from repro.core.result import SAT, UNSAT
from repro.experiments.export import export_suite, main as export_main
from repro.formula.dqbf import expansion_solve
from repro.formula.dqdimacs import load_dqdimacs

from conftest import dqbf_strategy


class TestExport:
    def test_export_writes_files_and_index(self, tmp_path):
        directory = str(tmp_path / "suite")
        total = export_suite(directory, count=2, scale=1.0, families=("adder", "z4"))
        assert total == 4
        index = (tmp_path / "suite" / "index.csv").read_text().strip().split("\n")
        assert index[0].startswith("instance,family")
        assert len(index) == 5
        # every exported file parses back and solves to its expected status
        for line in index[1:]:
            name, family, expected = line.split(",")[:3]
            path = os.path.join(directory, family, f"{name}.dqdimacs")
            formula = load_dqdimacs(path)
            if expected in ("SAT", "UNSAT"):
                assert solve_dqbf(formula).status == expected

    def test_cli_entry(self, tmp_path, capsys):
        export_main([str(tmp_path / "out"), "--count", "1", "--families", "adder"])
        out = capsys.readouterr().out
        assert "wrote 1 instances" in out


class TestSatProbe:
    @settings(max_examples=80, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_probe_preserves_answers(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        result = solve_dqbf(formula.copy(), options=HqsOptions(use_sat_probe=True))
        assert result.status == expected

    def test_probe_refutes_zero_branch_conflict(self):
        """Matrix forces y=1 and y=0 on the all-zero branch.

        Preprocessing is disabled so the probe (and not self-subsuming
        resolution, which also decides this formula) gets to fire.
        """
        from repro.formula.dqbf import Dqbf

        formula = Dqbf.build(
            [1], [(2, [1])], [[2, 1], [-2, 1]]
        )
        result = solve_dqbf(
            formula,
            options=HqsOptions(use_sat_probe=True, use_preprocessing=False),
        )
        assert result.status == UNSAT
        assert result.stats.get("sat_probe_refuted") == 1

    def test_probe_catches_idq_style_c432_instances(self):
        from repro.pec.families import make_c432

        instance = make_c432(3, 5, 3, buggy=True, seed=3)
        result = solve_dqbf(
            instance.formula, options=HqsOptions(use_sat_probe=True)
        )
        assert result.status == UNSAT
