"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_SAT, EXIT_TIMEOUT, EXIT_UNSAT, build_parser, main

SAT_INSTANCE = """\
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
"""

UNSAT_INSTANCE = """\
p cnf 3 2
a 1 2 0
d 3 1 0
-3 2 0
3 -2 0
"""


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.dqdimacs"
    path.write_text(SAT_INSTANCE)
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.dqdimacs"
    path.write_text(UNSAT_INSTANCE)
    return str(path)


class TestCli:
    def test_sat_exit_code(self, sat_file, capsys):
        assert main([sat_file]) == EXIT_SAT
        assert "SAT" in capsys.readouterr().out

    def test_unsat_exit_code(self, unsat_file):
        assert main([unsat_file]) == EXIT_UNSAT

    @pytest.mark.parametrize("solver", ["hqs", "idq", "expansion"])
    def test_all_solvers(self, solver, sat_file, unsat_file):
        assert main(["--solver", solver, sat_file]) == EXIT_SAT
        assert main(["--solver", solver, unsat_file]) == EXIT_UNSAT

    def test_stats_flag(self, sat_file, capsys):
        main(["--stats", sat_file])
        out = capsys.readouterr().out
        assert any(line.startswith("c ") for line in out.splitlines())

    def test_feature_flags(self, sat_file):
        assert (
            main(["--no-preprocessing", "--no-unit-pure", "--no-maxsat", sat_file])
            == EXIT_SAT
        )
        assert main(["--no-qbf", sat_file]) == EXIT_SAT

    def test_timeout_flag_exit_code(self, tmp_path):
        from repro.pec.families import make_comp
        from repro.formula.dqdimacs import save_dqdimacs

        instance = make_comp(8, 3, buggy=False, seed=3)
        path = tmp_path / "hard.dqdimacs"
        save_dqdimacs(instance.formula, str(path))
        assert main(["--timeout", "0.01", str(path)]) == EXIT_TIMEOUT

    def test_parser_defaults(self):
        args = build_parser().parse_args(["f.dqdimacs"])
        assert args.solver == "hqs"
        assert args.timeout is None
