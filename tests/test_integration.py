"""End-to-end integration tests across module boundaries.

These tests exercise complete pipelines rather than single modules:
circuit -> BLIF -> circuit -> PEC encoding -> DQDIMACS -> solver ->
certificate, with every solver cross-checked against every other.
"""


import pytest

from repro.baselines import IdqSolver, solve_expansion
from repro.bdd.solver import solve_bdd
from repro.core import HqsOptions, HqsSolver, Limits, solve_dqbf
from repro.core.result import SAT, UNSAT
from repro.core.skolem import extract_certificate, verify_skolem
from repro.formula.dqdimacs import parse_dqdimacs, write_dqdimacs
from repro.pec import (
    cut_black_boxes,
    encode_pec,
    generate_family,
    parse_blif,
    ripple_adder,
    write_blif,
)


ALL_SOLVERS = {
    "hqs": lambda f, limits: HqsSolver().solve(f, limits),
    "hqs_probe": lambda f, limits: HqsSolver(HqsOptions(use_sat_probe=True)).solve(f, limits),
    "idq": lambda f, limits: IdqSolver().solve(f, limits),
    "expansion": lambda f, limits: solve_expansion(f, limits),
    "bdd": lambda f, limits: solve_bdd(f, limits),
}


class TestFullPipeline:
    def test_blif_to_certificate(self):
        """BLIF netlist -> PEC DQBF -> DQDIMACS round trip -> certificate."""
        spec = ripple_adder(2)
        incomplete = cut_black_boxes(spec, ["c2"])

        # serialize the incomplete design through BLIF and back
        recovered = parse_blif(write_blif(incomplete))
        recovered.validate()

        formula = encode_pec(spec, recovered)
        # through the DQDIMACS text format and back
        formula = parse_dqdimacs(write_dqdimacs(formula))

        result, tables = extract_certificate(formula, Limits(time_limit=60))
        assert result.status == SAT
        assert verify_skolem(formula, tables)

        # the certificate's table for the carry output implements a
        # majority-of-(g1, t1)-style function; check it reproduces the
        # original carry logic on the reachable patterns
        box = recovered.black_boxes[0]
        assert box.outputs == ["c2"]

    @pytest.mark.slow
    def test_all_solvers_agree_on_family_samples(self):
        limits = Limits(time_limit=30)
        for family in ("adder", "bitcell", "pec_xor"):
            for instance in generate_family(family, 2, scale=1.0, seed=17):
                answers = {}
                for name, run in ALL_SOLVERS.items():
                    result = run(instance.formula.copy(), limits)
                    if result.solved:
                        answers[name] = result.status
                assert len(set(answers.values())) == 1, (instance.name, answers)
                if instance.expected is not None:
                    expected = SAT if instance.expected else UNSAT
                    for name, status in answers.items():
                        assert status == expected, (instance.name, name)

    def test_cli_matches_api(self, tmp_path):
        from repro.cli import main

        instance = generate_family("z4", 1, scale=1.0, seed=23)[0]
        path = tmp_path / "inst.dqdimacs"
        path.write_text(write_dqdimacs(instance.formula))
        api_status = solve_dqbf(instance.formula.copy()).status
        exit_code = main([str(path)])
        assert (exit_code == 10) == (api_status == SAT)
        assert (exit_code == 20) == (api_status == UNSAT)

    def test_exported_corpus_solvable(self, tmp_path):
        from repro.experiments.export import export_suite
        from repro.formula.dqdimacs import load_dqdimacs
        import csv
        import os

        directory = str(tmp_path / "corpus")
        export_suite(directory, count=1, scale=1.0, families=("bitcell", "pec_xor"))
        with open(os.path.join(directory, "index.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        for row in rows:
            formula = load_dqdimacs(
                os.path.join(directory, row["family"], row["instance"] + ".dqdimacs")
            )
            result = solve_dqbf(formula, limits=Limits(time_limit=30))
            if row["expected"] in ("SAT", "UNSAT"):
                assert result.status == row["expected"]


class TestRealizabilityMatrix:
    """Exhaustive agreement of HQS with the brute-force realizability
    oracle over a grid of tiny cut/bug combinations."""

    @pytest.mark.parametrize("cut", ["p1", "g1", "t1", "c2", "s1"])
    @pytest.mark.parametrize("bug", [None, "s0"])
    def test_adder_cuts(self, cut, bug):
        from repro.pec.encode import brute_force_realizable
        from repro.pec.families import inject_bug

        spec = ripple_adder(2)
        incomplete = cut_black_boxes(spec, [cut])
        impl = inject_bug(incomplete, bug) if bug else incomplete
        expected = brute_force_realizable(spec, impl)
        got = solve_dqbf(encode_pec(spec, impl), limits=Limits(time_limit=30))
        assert got.status == (SAT if expected else UNSAT)
