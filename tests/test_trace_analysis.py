"""Tests for solver tracing and prefix difficulty analysis."""


from repro.core import HqsOptions, HqsSolver, analyze_prefix
from repro.core.depgraph import PrefixAnalysis
from repro.formula.dqbf import Dqbf
from repro.formula.prefix import DependencyPrefix


def henkin_formula() -> Dqbf:
    return Dqbf.build(
        [1, 2], [(3, [1]), (4, [2])],
        [[3, 4, 1], [-3, -4, 2], [3, -4, -1], [-3, 4, -2]],
    )


class TestTrace:
    def test_trace_records_pipeline(self):
        solver = HqsSolver(trace=True)
        result = solver.solve(henkin_formula())
        assert result.solved
        text = "\n".join(solver.trace)
        assert "matrix AIG built" in text
        assert "MaxSAT selection" in text
        assert "Theorem 1" in text

    def test_trace_off_by_default(self):
        solver = HqsSolver()
        solver.solve(henkin_formula())
        assert solver.trace == []

    def test_trace_records_preprocessing_decision(self):
        formula = Dqbf.build([1], [(2, [1])], [[2], [-2]])
        solver = HqsSolver(trace=True)
        result = solver.solve(formula)
        assert result.status == "UNSAT"
        assert any("preprocessing decided" in line for line in solver.trace)

    def test_trace_records_probe(self):
        formula = Dqbf.build([1], [(2, [1])], [[2, 1], [-2, 1]])
        solver = HqsSolver(HqsOptions(use_sat_probe=True, use_preprocessing=False), trace=True)
        result = solver.solve(formula)
        assert result.status == "UNSAT"
        assert any("SAT probe" in line for line in solver.trace)

    def test_cli_verbose(self, tmp_path, capsys):
        from repro.cli import main
        from repro.formula.dqdimacs import save_dqdimacs

        path = tmp_path / "f.dqdimacs"
        save_dqdimacs(henkin_formula(), str(path))
        main(["--verbose", str(path)])
        out = capsys.readouterr().out
        assert "c matrix AIG built" in out


class TestPrefixAnalysis:
    def test_qbf_shaped_prefix(self):
        prefix = DependencyPrefix()
        prefix.add_universal(1)
        prefix.add_universal(2)
        prefix.add_existential(3, [1])
        prefix.add_existential(4, [1, 2])
        analysis = analyze_prefix(prefix)
        assert analysis.is_qbf
        assert analysis.num_incomparable_pairs == 0
        assert analysis.min_elimination_set == 0
        assert analysis.max_dependency_size == 2
        assert analysis.distinct_dependency_sets == 2

    def test_henkin_prefix(self):
        analysis = analyze_prefix(henkin_formula().prefix)
        assert not analysis.is_qbf
        assert analysis.num_incomparable_pairs == 1
        assert analysis.min_elimination_set == 1

    def test_as_dict_round_trip(self):
        analysis = analyze_prefix(henkin_formula().prefix)
        data = analysis.as_dict()
        assert data["num_universals"] == 2
        assert data["num_existentials"] == 2
        assert isinstance(repr(analysis), str)

    def test_empty_prefix(self):
        analysis = analyze_prefix(DependencyPrefix())
        assert analysis.is_qbf
        assert analysis.max_dependency_size == 0

    def test_cli_analyze(self, tmp_path, capsys):
        from repro.cli import main
        from repro.formula.dqdimacs import save_dqdimacs

        path = tmp_path / "f.dqdimacs"
        save_dqdimacs(henkin_formula(), str(path))
        main(["--analyze", str(path)])
        out = capsys.readouterr().out
        assert "c num_incomparable_pairs = 1" in out
