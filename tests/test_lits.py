"""Tests for DIMACS literal helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formula.lits import evaluate, is_positive, lit_of, negate, var_of, variables_of


class TestVarOf:
    def test_positive(self):
        assert var_of(5) == 5

    def test_negative(self):
        assert var_of(-7) == 7

    @given(st.integers(1, 10**6))
    def test_polarity_independent(self, v):
        assert var_of(v) == var_of(-v) == v


class TestNegate:
    def test_flips_sign(self):
        assert negate(3) == -3
        assert negate(-3) == 3

    @given(st.integers(1, 10**6), st.booleans())
    def test_involution(self, v, sign):
        lit = v if sign else -v
        assert negate(negate(lit)) == lit


class TestLitOf:
    def test_true_gives_positive(self):
        assert lit_of(4, True) == 4

    def test_false_gives_negative(self):
        assert lit_of(4, False) == -4

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive_vars(self, bad):
        with pytest.raises(ValueError):
            lit_of(bad, True)


class TestEvaluate:
    def test_positive_literal(self):
        assert evaluate(2, {2: True}) is True
        assert evaluate(2, {2: False}) is False

    def test_negative_literal(self):
        assert evaluate(-2, {2: True}) is False
        assert evaluate(-2, {2: False}) is True

    def test_unassigned_raises(self):
        with pytest.raises(KeyError):
            evaluate(3, {2: True})

    @given(st.integers(1, 50), st.booleans())
    def test_literal_and_negation_disagree(self, v, value):
        assignment = {v: value}
        assert evaluate(v, assignment) != evaluate(-v, assignment)


class TestIsPositive:
    @given(st.integers(1, 100))
    def test_matches_sign(self, v):
        assert is_positive(v)
        assert not is_positive(-v)


class TestVariablesOf:
    def test_mixed(self):
        assert variables_of([1, -2, 3, -3]) == {1, 2, 3}

    def test_empty(self):
        assert variables_of([]) == set()
