"""Tests for the random DQBF generator."""

import random

import pytest

from repro.formula.generator import (
    RandomDqbfConfig,
    henkin_fraction,
    random_dqbf,
    random_qbf_shaped_dqbf,
)


class TestConfigValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RandomDqbfConfig(num_universals=-1)

    def test_bad_density_rejected(self):
        with pytest.raises(ValueError):
            RandomDqbfConfig(dependency_density=1.5)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            RandomDqbfConfig(clause_width=0)


class TestRandomDqbf:
    def test_closed_and_well_formed(self):
        rng = random.Random(1)
        for _ in range(50):
            formula = random_dqbf(rng)
            formula.validate()
            assert len(formula.prefix.universals) == 3
            assert len(formula.prefix.existentials) == 3

    def test_determinism_per_seed(self):
        a = random_dqbf(random.Random(7))
        b = random_dqbf(random.Random(7))
        assert a.matrix.clauses == b.matrix.clauses
        assert a.prefix == b.prefix

    def test_density_extremes(self):
        rng = random.Random(2)
        full = random_dqbf(rng, RandomDqbfConfig(dependency_density=1.0))
        for y in full.prefix.existentials:
            assert full.prefix.dependencies(y) == frozenset(full.prefix.universals)
        empty = random_dqbf(rng, RandomDqbfConfig(dependency_density=0.0))
        for y in empty.prefix.existentials:
            assert empty.prefix.dependencies(y) == frozenset()

    def test_forced_nonempty_dependencies(self):
        rng = random.Random(3)
        config = RandomDqbfConfig(
            dependency_density=0.0, allow_empty_dependencies=False
        )
        formula = random_dqbf(rng, config)
        for y in formula.prefix.existentials:
            assert formula.prefix.dependencies(y)

    def test_density_controls_henkin_fraction(self):
        rng = random.Random(4)
        low = [random_dqbf(rng, RandomDqbfConfig(dependency_density=0.4)) for _ in range(60)]
        high = [random_dqbf(rng, RandomDqbfConfig(dependency_density=1.0)) for _ in range(60)]
        assert henkin_fraction(high) == 0.0
        assert henkin_fraction(low) > 0.2


class TestQbfShaped:
    def test_always_linearizable(self):
        rng = random.Random(5)
        for _ in range(50):
            formula = random_qbf_shaped_dqbf(rng)
            assert formula.is_qbf()

    def test_solvers_agree_on_generated(self):
        from repro.core import solve_dqbf
        from repro.formula.dqbf import expansion_solve

        rng = random.Random(6)
        for _ in range(30):
            formula = random_dqbf(
                rng, RandomDqbfConfig(num_universals=2, num_existentials=2, num_clauses=8)
            )
            expected = "SAT" if expansion_solve(formula) else "UNSAT"
            assert solve_dqbf(formula.copy()).status == expected
