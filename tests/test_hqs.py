"""End-to-end tests for the HQS solver against the semantic oracles."""

import pytest
from hypothesis import given, settings

from repro.core.hqs import HqsOptions, HqsSolver, solve_dqbf
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy

ABLATIONS = {
    "default": HqsOptions(),
    "no_preprocessing": HqsOptions(use_preprocessing=False),
    "no_gates": HqsOptions(use_gate_detection=False),
    "no_unit_pure": HqsOptions(use_unit_pure=False),
    "no_maxsat": HqsOptions(use_maxsat_selection=False),
    "no_qbf_backend": HqsOptions(use_qbf_backend=False),
    "bare": HqsOptions(
        use_preprocessing=False,
        use_unit_pure=False,
        use_maxsat_selection=False,
        use_qbf_backend=False,
    ),
    "with_fraig": HqsOptions(fraig_interval=1),
}


class TestPaperExamples:
    def test_example1_satisfiable_matrix(self):
        """forall x1 x2 exists y1(x1) y2(x2): (y1==x1) & (y2==x2)."""
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],
        )
        result = solve_dqbf(formula)
        assert result.status == SAT

    def test_cross_dependency_unsat(self):
        """y1(x1) == x2 has no Skolem function."""
        formula = Dqbf.build([1, 2], [(3, [1])], [[-3, 2], [3, -2]])
        assert solve_dqbf(formula).status == UNSAT

    def test_fig1_matrix(self):
        """(y1|x1)(y1|x2)(y2|!x1)(y2|!x2) with Henkin prefix: y1=y2=1 works."""
        formula = Dqbf.build(
            [3, 4], [(1, [3]), (2, [4])],
            [[1, 3], [1, 4], [2, -3], [2, -4]],
        )
        assert solve_dqbf(formula).status == SAT

    def test_already_qbf_prefix_goes_to_backend(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [1, 2])],
            [[3, 1], [-3, 4, 2], [4, -2, -1]],
        )
        result = solve_dqbf(formula)
        assert result.status in (SAT, UNSAT)
        assert result.status == (SAT if expansion_solve(formula) else UNSAT)


class TestAblations:
    @settings(max_examples=60, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_all_feature_combinations_agree_with_oracle(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        for name, options in ABLATIONS.items():
            result = solve_dqbf(formula.copy(), options=options)
            assert result.status == expected, f"ablation {name} disagrees"


class TestStatistics:
    def test_stats_populated(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],
        )
        solver = HqsSolver()
        result = solver.solve(formula)
        assert "pre_rounds" in result.stats
        assert result.runtime >= 0.0

    def test_maxsat_stats_on_henkin_instance(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[3, 4, 1, 2], [-3, -4, -1], [3, -4, 2], [-3, 4, -2]],
        )
        solver = HqsSolver(HqsOptions(use_preprocessing=False))
        result = solver.solve(formula)
        assert result.stats.get("maxsat_pairs", 0) >= 1
        assert result.stats.get("selected_universals", 0) >= 1


class TestLimits:
    def _hard_instance(self) -> Dqbf:
        """A moderately large PEC instance that cannot finish instantly."""
        from repro.pec.families import make_comp

        return make_comp(8, 3, buggy=False, seed=7).formula

    def test_timeout_reported(self):
        result = solve_dqbf(self._hard_instance(), limits=Limits(time_limit=0.0))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource == "time"

    def test_node_limit_reported(self):
        result = solve_dqbf(self._hard_instance(), limits=Limits(node_limit=1))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource in ("nodes", "time")

    def test_result_solved_flag(self):
        formula = Dqbf.build([1], [(2, [1])], [[2, 1]])
        assert solve_dqbf(formula).solved
        assert not solve_dqbf(
            self._hard_instance(), limits=Limits(time_limit=0.0)
        ).solved


class TestTrivialFormulas:
    def test_empty_matrix_is_sat(self):
        formula = Dqbf.build([1], [(2, [1])], [])
        assert solve_dqbf(formula).status == SAT

    def test_tautology_clauses_sat(self):
        formula = Dqbf.build([1], [(2, [1])], [[1, -1]])
        assert solve_dqbf(formula).status == SAT

    def test_empty_clause_unsat(self):
        formula = Dqbf.build([1], [(2, [1])], [[]])
        assert solve_dqbf(formula).status == UNSAT

    def test_no_universals(self):
        formula = Dqbf.build([], [(1, []), (2, [])], [[1, 2], [-1, 2]])
        assert solve_dqbf(formula).status == SAT

    def test_no_existentials_sat(self):
        formula = Dqbf.build([1, 2], [], [[1, -1, 2]])
        assert solve_dqbf(formula).status == SAT

    def test_no_existentials_unsat(self):
        formula = Dqbf.build([1, 2], [], [[1, 2]])
        assert solve_dqbf(formula).status == UNSAT

    def test_open_formula_rejected(self):
        formula = Dqbf.build([1], [(2, [1])], [[3]])
        with pytest.raises(ValueError):
            HqsSolver()._solve_inner(formula, Limits())
