"""Tests for Theorem 1/2 eliminations on the AIG-backed state."""

import pytest
from hypothesis import given, settings

from repro.aig.cnf_bridge import cnf_to_aig
from repro.core.elimination import (
    eliminable_existentials,
    eliminate_existential,
    eliminate_universal,
    universal_elimination_cost,
)
from repro.core.state import AigDqbf
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


def state_of(formula: Dqbf) -> AigDqbf:
    aig, root = cnf_to_aig(formula.matrix.clauses)
    next_var = max([formula.matrix.num_vars] + formula.prefix.all_variables()) + 1
    return AigDqbf(aig, root, formula.prefix.copy(), next_var)


def state_truth(state: AigDqbf) -> bool:
    """Decide the state's DQBF with the expansion oracle (small only)."""
    import itertools

    universals = state.prefix.universals
    existentials = state.prefix.existentials
    deps = {y: sorted(state.prefix.dependencies(y)) for y in existentials}

    tables = []
    for y in existentials:
        rows = 1 << len(deps[y])
        tables.append(list(itertools.product([False, True], repeat=rows)))

    for combo in itertools.product(*tables):
        ok = True
        for values in itertools.product([False, True], repeat=len(universals)):
            assignment = dict(zip(universals, values))
            for y, table in zip(existentials, combo):
                row = 0
                for x in deps[y]:
                    row = (row << 1) | int(assignment[x])
                assignment[y] = table[row]
            if not state.evaluate(assignment):
                ok = False
                break
        if ok:
            return True
    return False


class TestUniversalElimination:
    def test_copies_created_for_dependents(self):
        formula = Dqbf.build([1, 2], [(3, [1, 2]), (4, [2])], [[3, 4, 1], [-3, -4, 2]])
        state = state_of(formula)
        copies = eliminate_universal(state, 2)
        # both 3 and 4 depend on x2 and occur in the 1-cofactor
        assert set(copies) <= {3, 4}
        for original, copy in copies.items():
            assert state.prefix.is_existential(copy)
            assert state.prefix.dependencies(copy) == (
                state.prefix.dependencies(original)
            )
        assert not state.prefix.is_universal(2)

    def test_nondependents_not_copied(self):
        formula = Dqbf.build([1, 2], [(3, [1])], [[3, 2], [-3, 1]])
        state = state_of(formula)
        copies = eliminate_universal(state, 2)
        assert copies == {}

    def test_rejects_existential(self):
        formula = Dqbf.build([1], [(2, [1])], [[2]])
        state = state_of(formula)
        with pytest.raises(ValueError):
            eliminate_universal(state, 2)

    @settings(max_examples=80, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=2, max_clauses=6))
    def test_preserves_truth(self, formula):
        expected = expansion_solve(formula)
        state = state_of(formula)
        x = state.prefix.universals[0]
        eliminate_universal(state, x)
        assert state_truth(state) == expected


class TestExistentialElimination:
    def test_requires_full_dependency(self):
        formula = Dqbf.build([1, 2], [(3, [1])], [[3, 2]])
        state = state_of(formula)
        with pytest.raises(ValueError):
            eliminate_existential(state, 3)

    def test_eliminable_listing(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1, 2]), (4, [1])], [[3, 4]]
        )
        state = state_of(formula)
        assert eliminable_existentials(state) == [3]

    @settings(max_examples=80, deadline=None)
    @given(dqbf_strategy(max_universals=2, max_existentials=2, max_clauses=6))
    def test_preserves_truth(self, formula):
        # force one existential to full dependency so Theorem 2 applies
        y = formula.prefix.existentials[0]
        formula.prefix.set_dependencies(y, formula.prefix.universals)
        expected = expansion_solve(formula)
        state = state_of(formula)
        eliminate_existential(state, y)
        assert state_truth(state) == expected
        assert y not in state.prefix.existentials


class TestCost:
    def test_cost_counts_dependents(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [1]), (5, [2])], [[3, 4, 5]]
        )
        state = state_of(formula)
        assert universal_elimination_cost(state, 1) == 2
        assert universal_elimination_cost(state, 2) == 1
