"""Tests for the CNF clause database."""

import itertools

import pytest
from hypothesis import given

from repro.formula.cnf import Cnf, normalize_clause

from conftest import cnf_strategy


class TestNormalizeClause:
    def test_sorts_and_dedupes(self):
        assert normalize_clause([3, -1, 3, 2]) == (-1, 2, 3)

    def test_tautology_returns_none(self):
        assert normalize_clause([1, -1]) is None
        assert normalize_clause([2, 5, -2]) is None

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_clause([1, 0, 2])

    def test_orders_by_variable_then_polarity(self):
        assert normalize_clause([-2, 2]) is None
        assert normalize_clause([2, -3, 3]) is None
        assert normalize_clause([-1, 1, 5]) is None


class TestCnfConstruction:
    def test_deduplicates_clauses(self):
        cnf = Cnf([[1, 2], [2, 1], [1, 2, 2]])
        assert len(cnf) == 1

    def test_drops_tautologies(self):
        cnf = Cnf([[1, -1], [2]])
        assert len(cnf) == 1
        assert (2,) in cnf._clause_set

    def test_num_vars_tracks_maximum(self):
        cnf = Cnf([[1, -7], [3]])
        assert cnf.num_vars == 7

    def test_num_vars_respects_declared(self):
        cnf = Cnf([[1]], num_vars=10)
        assert cnf.num_vars == 10

    def test_fresh_var(self):
        cnf = Cnf([[2]])
        assert cnf.fresh_var() == 3
        assert cnf.fresh_var() == 4

    def test_empty_clause(self):
        cnf = Cnf([[]])
        assert cnf.has_empty_clause()

    def test_contains(self):
        cnf = Cnf([[1, 2]])
        assert [2, 1] in cnf
        assert [1] not in cnf


class TestCnfEvaluate:
    def test_simple(self):
        cnf = Cnf([[1, 2], [-1]])
        assert cnf.evaluate({1: False, 2: True})
        assert not cnf.evaluate({1: True, 2: True})

    @given(cnf_strategy(max_vars=5, max_clauses=10))
    def test_matches_naive_semantics(self, clauses):
        cnf = Cnf(clauses)
        variables = sorted({abs(lit) for clause in clauses for lit in clause})
        for values in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, values))
            naive = all(
                any((lit > 0) == assignment[abs(lit)] for lit in clause)
                for clause in clauses
            )
            assert cnf.evaluate(assignment) == naive


class TestCnfAssign:
    def test_removes_satisfied_clauses(self):
        cnf = Cnf([[1, 2], [-1, 3]])
        assigned = cnf.assign(1, True)
        assert list(assigned) == [(3,)]

    def test_produces_empty_clause_on_conflict(self):
        cnf = Cnf([[1]])
        assigned = cnf.assign(1, False)
        assert assigned.has_empty_clause()

    @given(cnf_strategy(max_vars=5, max_clauses=10))
    def test_assign_is_semantic_cofactor(self, clauses):
        cnf = Cnf(clauses)
        variables = sorted({abs(lit) for clause in clauses for lit in clause})
        var = variables[0]
        rest = [v for v in variables if v != var]
        for value in (False, True):
            cofactor = cnf.assign(var, value)
            for values in itertools.product([False, True], repeat=len(rest)):
                assignment = dict(zip(rest, values))
                full = dict(assignment)
                full[var] = value
                # cofactor may mention var-free clauses only
                assert cofactor.evaluate({**assignment, var: value}) == cnf.evaluate(full)


class TestCnfRename:
    def test_simple_rename(self):
        cnf = Cnf([[1, -2]])
        renamed = cnf.rename({1: 5})
        assert (-2, 5) in renamed._clause_set

    def test_rename_preserves_polarity(self):
        cnf = Cnf([[-3]])
        renamed = cnf.rename({3: 9})
        assert (-9,) in renamed._clause_set


class TestCnfSerialization:
    def test_dimacs_output(self):
        cnf = Cnf([[1, -2], [2]])
        text = cnf.to_dimacs()
        lines = text.strip().split("\n")
        assert lines[0] == "p cnf 2 2"
        assert "1 -2 0" in lines
        assert "2 0" in lines

    def test_copy_is_independent(self):
        cnf = Cnf([[1]])
        clone = cnf.copy()
        clone.add_clause([2])
        assert len(cnf) == 1
        assert len(clone) == 2
