"""Robustness tests: resource guard, degradation ladder, failure taxonomy.

Covers the graceful-degradation contract: every budget exhaustion ends
in an ``UNKNOWN`` result carrying a machine-readable
:class:`~repro.errors.FailureDiagnosis` (never an escaping exception),
and each degradable pipeline stage falls back to its cheaper
alternative when only its own slice of the budget is spent.  The
``*_time_fraction <= 0`` / ``maxsat_conflict_budget=0`` options are the
fault-injection hooks: they expire a stage slice instantly while the
overall budget stays healthy.
"""

import time

import pytest

from repro.core.guard import ResourceGuard
from repro.core.hqs import HqsOptions, HqsSolver, solve_dqbf
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.errors import (
    ConflictLimitExceeded,
    NodeLimitExceeded,
    StageBudgetExceeded,
    TimeoutExceeded,
)
from repro.formula.dqbf import Dqbf, expansion_solve
from repro.pec.families import make_comp, make_pec_xor


class TestResourceGuard:
    def test_ensure_coercions(self):
        fresh = ResourceGuard.ensure(None)
        assert fresh.time_limit is None and fresh.node_limit is None

        from_limits = ResourceGuard.ensure(Limits(time_limit=7.0, node_limit=9))
        assert from_limits.time_limit == 7.0
        assert from_limits.node_limit == 9

        # An existing guard passes through unchanged — nested solver
        # calls share one clock instead of each restarting a fresh one.
        assert ResourceGuard.ensure(from_limits) is from_limits

    def test_expired_deadline_raises_timeout(self):
        guard = ResourceGuard(time_limit=0.0)
        time.sleep(0.002)
        with pytest.raises(TimeoutExceeded) as excinfo:
            guard.check()
        assert excinfo.value.diagnosis is not None
        assert excinfo.value.diagnosis.resource == "time"

    def test_conflict_budget_raises_with_diagnosis(self):
        guard = ResourceGuard(conflict_limit=10)
        guard.enter_stage("selection")
        guard.charge_conflicts(11)
        with pytest.raises(ConflictLimitExceeded) as excinfo:
            guard.check()
        assert excinfo.value.diagnosis.stage == "selection"
        assert excinfo.value.diagnosis.resource == "conflicts"

    def test_check_nodes_raises_and_records_size(self):
        guard = ResourceGuard(node_limit=100)
        guard.check_nodes(50)  # fine
        with pytest.raises(NodeLimitExceeded) as excinfo:
            guard.check_nodes(101)
        assert excinfo.value.diagnosis.progress["matrix_size"] == 101.0

    def test_slice_raises_stage_budget_when_parent_healthy(self):
        guard = ResourceGuard(time_limit=1000.0)
        child = guard.slice(time_fraction=0.0, stage="qbf-backend")
        time.sleep(0.002)
        with pytest.raises(StageBudgetExceeded):
            child.check()

    def test_slice_raises_real_timeout_when_parent_exhausted(self):
        guard = ResourceGuard(time_limit=0.0)
        child = guard.slice(time_fraction=0.5)
        time.sleep(0.002)
        with pytest.raises(TimeoutExceeded):
            child.check()

    def test_slice_conflicts_propagate_to_parent(self):
        guard = ResourceGuard(conflict_limit=1000)
        child = guard.slice(conflict_limit=10)
        child.charge_conflicts(7)
        assert child.conflicts == 7
        assert guard.conflicts == 7
        child.charge_conflicts(4)
        with pytest.raises(StageBudgetExceeded):
            child.check()
        guard.check()  # parent budget (1000) still healthy

    def test_stage_deadline_fraction_zero_is_expired(self):
        guard = ResourceGuard()  # unlimited
        assert guard.stage_deadline(0.5) is None
        expired = guard.stage_deadline(0.0)
        assert expired is not None and expired <= time.monotonic()

    def test_stage_deadline_never_past_overall_deadline(self):
        guard = ResourceGuard(time_limit=10.0)
        assert guard.stage_deadline(0.25) <= guard.deadline()
        assert guard.stage_deadline(5.0) <= guard.deadline()

    def test_absorbed_checkpoint_accounting_in_diagnosis(self):
        guard = ResourceGuard()
        guard.absorb_checkpoint(elapsed=3.5, conflicts=42)
        assert guard.prior_elapsed == 3.5
        assert guard.prior_conflicts == 42
        assert guard.diagnosis("time").elapsed >= 3.5


def _oracle_status(formula: Dqbf) -> str:
    return SAT if expansion_solve(formula) else UNSAT


class TestDegradationLadder:
    """Each ladder stage, fault-injected, degrades and still answers."""

    def _instance(self):
        # Needs real MaxSAT work (conflicting dependency pairs) and
        # enough eliminations for FRAIG sweeps to actually run.
        return make_comp(6, 2, buggy=True, seed=11)

    def test_maxsat_over_budget_degrades_to_greedy(self):
        instance = self._instance()
        options = HqsOptions(maxsat_conflict_budget=0)
        result = HqsSolver(options).solve(
            instance.formula.copy(), Limits(time_limit=120)
        )
        assert result.status in (SAT, UNSAT)
        assert result.status == (SAT if instance.expected else UNSAT)
        assert result.stats.get("degrade_maxsat") == 1

    def test_qbf_over_budget_degrades_to_expansion(self):
        instance = self._instance()
        options = HqsOptions(qbf_time_fraction=0.0)
        result = HqsSolver(options).solve(
            instance.formula.copy(), Limits(time_limit=120)
        )
        assert result.status == (SAT if instance.expected else UNSAT)
        assert result.stats.get("degrade_qbf") == 1

    def test_fraig_over_budget_degrades_to_strash(self):
        instance = self._instance()
        options = HqsOptions(fraig_interval=1, fraig_time_fraction=0.0)
        result = HqsSolver(options).solve(
            instance.formula.copy(), Limits(time_limit=120)
        )
        assert result.status == (SAT if instance.expected else UNSAT)
        assert result.stats.get("degrade_fraig", 0) >= 1

    def test_degraded_ladder_matches_oracle_on_small_formulas(self):
        # All three fallbacks at once, on a formula small enough for the
        # semantic oracle: degradation must never change the answer.
        formula = Dqbf.build(
            [1, 2],
            [(3, [1]), (4, [2])],
            [[3, 4, 1], [-3, -4, 2], [3, -4, -1], [-3, 4, -2]],
        )
        expected = _oracle_status(formula)
        options = HqsOptions(
            maxsat_conflict_budget=0,
            qbf_time_fraction=0.0,
            fraig_interval=1,
            fraig_time_fraction=0.0,
        )
        result = HqsSolver(options).solve(formula.copy(), Limits(time_limit=60))
        assert result.status == expected


class TestExhaustionVerdicts:
    """No resource-limit exception escapes any solver front end."""

    def _hard_formula(self) -> Dqbf:
        return make_comp(8, 3, buggy=False, seed=7).formula

    def test_hqs_time_exhaustion_is_unknown(self):
        result = solve_dqbf(self._hard_formula(), limits=Limits(time_limit=0.0))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource == "time"
        assert result.failure.stage  # non-empty stage name

    def test_hqs_node_exhaustion_is_unknown(self):
        result = solve_dqbf(self._hard_formula(), limits=Limits(node_limit=1))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource in ("nodes", "time")

    def test_failure_survives_result_serialization(self):
        result = solve_dqbf(self._hard_formula(), limits=Limits(time_limit=0.0))
        from repro.core.result import SolveResult

        restored = SolveResult.from_dict(result.as_dict())
        assert restored.status == UNKNOWN
        assert restored.failure is not None
        assert restored.failure.resource == result.failure.resource
        assert restored.failure.stage == result.failure.stage

    @pytest.mark.parametrize("solver_name", ["HQS", "IDQ", "EXPANSION", "BDD", "DPLL"])
    def test_all_backends_funnel_exhaustion(self, solver_name):
        from repro.experiments.runner import SOLVERS

        formula = self._hard_formula()
        result = SOLVERS[solver_name](formula, Limits(time_limit=0.01))
        assert result.status in (SAT, UNSAT, UNKNOWN)
        if result.status == UNKNOWN:
            assert result.failure is not None


class TestCliExitCodes:
    def _write_hard(self, tmp_path) -> str:
        from repro.formula.dqdimacs import save_dqdimacs

        path = tmp_path / "hard.dqdimacs"
        save_dqdimacs(make_comp(8, 3, buggy=False, seed=3).formula, str(path))
        return str(path)

    def test_timeout_exit_124_and_failure_line(self, tmp_path, capsys):
        from repro.cli import EXIT_TIMEOUT, main

        path = self._write_hard(tmp_path)
        assert main(["--timeout", "0.01", path]) == EXIT_TIMEOUT
        out = capsys.readouterr().out
        assert "s cnf UNKNOWN" in out
        assert "c failure stage=" in out
        assert "resource=time" in out

    def test_node_limit_exit_125(self, tmp_path, capsys):
        from repro.cli import EXIT_NODELIMIT, main

        path = self._write_hard(tmp_path)
        assert main(["--node-limit", "1", path]) == EXIT_NODELIMIT
        out = capsys.readouterr().out
        assert "resource=nodes" in out

    def test_sat_instance_still_exits_10(self, tmp_path):
        from repro.cli import EXIT_SAT, main
        from repro.formula.dqdimacs import save_dqdimacs

        instance = make_pec_xor(4, 1, buggy=False, seed=61)
        path = tmp_path / "sat.dqdimacs"
        save_dqdimacs(instance.formula, str(path))
        assert main([str(path)]) == EXIT_SAT
