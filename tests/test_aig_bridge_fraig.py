"""Tests for CNF<->AIG conversion and FRAIG sweeping."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.cnf_bridge import aig_to_cnf, cnf_to_aig, is_satisfiable, is_tautology
from repro.aig.fraig import fraig_root, simulate
from repro.aig.graph import FALSE, TRUE, Aig, complement
from repro.errors import TimeoutExceeded
from repro.sat.simple import dpll_solve

from conftest import cnf_strategy
from test_aig_graph import random_edge


def brute_sat(clauses):
    return dpll_solve(clauses) is not None


class TestCnfToAig:
    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy(max_vars=5, max_clauses=12, max_len=3))
    def test_function_matches_cnf(self, clauses):
        aig, root = cnf_to_aig(clauses)
        variables = sorted({abs(l) for c in clauses for l in c})
        for values in itertools.product([False, True], repeat=len(variables)):
            assignment = dict(zip(variables, values))
            expected = all(
                any((lit > 0) == assignment[abs(lit)] for lit in clause)
                for clause in clauses
            )
            if root in (TRUE, FALSE):
                got = root == TRUE
            else:
                got = aig.evaluate(root, assignment)
            assert got == expected

    def test_empty_cnf_is_true(self):
        _aig, root = cnf_to_aig([])
        assert root == TRUE

    def test_conflicting_units_collapse_to_false(self):
        _aig, root = cnf_to_aig([[1], [-1]])
        assert root == FALSE


class TestAigToCnf:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**6))
    def test_equisatisfiable_per_assignment(self, seed):
        """Asserting the root literal plus an input assignment must be
        satisfiable exactly when the AIG evaluates to true."""
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3]
        e = random_edge(aig, rng, variables, 3)
        if e in (TRUE, FALSE):
            return
        # start_var keeps auxiliaries clear of vars 1..3 even when some
        # variable does not occur in the cone
        cnf, root_lit, node_var = aig_to_cnf(aig, e, start_var=max(variables))
        for values in itertools.product([False, True], repeat=3):
            assignment = dict(zip(variables, values))
            unit_clauses = [[v if val else -v] for v, val in assignment.items()]
            sat = brute_sat(cnf.clauses + [[root_lit]] + unit_clauses)
            assert sat == aig.evaluate(e, assignment)

    def test_constant_roots(self):
        aig = Aig()
        cnf_t, lit_t, _ = aig_to_cnf(aig, TRUE)
        assert brute_sat(cnf_t.clauses + [[lit_t]])
        cnf_f, lit_f, _ = aig_to_cnf(aig, FALSE)
        assert not brute_sat(cnf_f.clauses + [[lit_f]])

    def test_start_var_prevents_collisions(self):
        """Regression: auxiliaries must not collide with external variables
        absent from the cone (caused bogus UNSAT PEC encodings)."""
        aig = Aig()
        e = aig.land(aig.var(1), aig.var(2))
        # variable space extends to 10, but the cone only mentions 1, 2
        cnf, root_lit, node_var = aig_to_cnf(aig, e, start_var=10)
        for clause in cnf.clauses:
            for lit in clause:
                assert abs(lit) in (1, 2) or abs(lit) > 10
        assert abs(root_lit) > 10


class TestSatChecks:
    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy(max_vars=6, max_clauses=15))
    def test_is_satisfiable_matches_oracle(self, clauses):
        aig, root = cnf_to_aig(clauses)
        assert is_satisfiable(aig, root) == brute_sat(clauses)

    def test_is_tautology(self):
        aig = Aig()
        taut = aig.lor(aig.var(1), complement(aig.var(1)))
        assert taut == TRUE
        assert is_tautology(aig, taut)
        assert not is_tautology(aig, aig.var(1))

    def test_deadline_propagates(self):
        import time

        aig = Aig()
        # moderately hard function so the solve has work to do
        from test_sat_solver import php_clauses

        aig, root = cnf_to_aig(php_clauses(8))
        with pytest.raises(TimeoutExceeded):
            is_satisfiable(aig, root, deadline=time.monotonic() - 1)


class TestFraig:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_function_preserved(self, seed):
        rng = random.Random(seed)
        aig = Aig()
        variables = [1, 2, 3, 4]
        e = random_edge(aig, rng, variables, 4)
        reduced, new_root = fraig_root(aig, e)
        for values in itertools.product([False, True], repeat=4):
            assignment = dict(zip(variables, values))
            original = e == TRUE if e in (TRUE, FALSE) else aig.evaluate(e, assignment)
            swept = (
                new_root == TRUE
                if new_root in (TRUE, FALSE)
                else reduced.evaluate(new_root, assignment)
            )
            assert original == swept

    def test_merges_structurally_distinct_equivalents(self):
        aig = Aig()
        x, y = aig.var(1), aig.var(2)
        # two structurally different forms of x XOR y
        form1 = aig.lor(aig.land(x, complement(y)), aig.land(complement(x), y))
        form2 = aig.land(aig.lor(x, y), complement(aig.land(x, y)))
        both = aig.land(form1, form2)  # equals form1 alone semantically
        reduced, new_root = fraig_root(aig, both)
        # after sweeping, the two xor cones collapse: the result is not
        # larger than one xor plus the outer AND
        assert reduced.cone_size(new_root) <= aig.cone_size(form1) + 1

    def test_simulate_words(self):
        aig = Aig()
        e = aig.land(aig.var(1), complement(aig.var(2)))
        words = simulate(aig, e, {1: 0b1100, 2: 0b1010}, 4)
        from repro.aig.graph import node_of

        assert words[node_of(e)] == 0b0100

    def test_constant_root_passthrough(self):
        aig = Aig()
        reduced, root = fraig_root(aig, TRUE)
        assert root == TRUE
