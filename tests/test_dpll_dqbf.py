"""Tests for the search-based DQBF solver (the [14] paradigm)."""

from hypothesis import given, settings

from repro.baselines.dpll import DpllDqbfSolver, solve_dpll_dqbf
from repro.core.result import Limits, SAT, UNKNOWN, UNSAT
from repro.formula.dqbf import Dqbf, expansion_solve

from conftest import dqbf_strategy


class TestKnownInstances:
    def test_identity_pair_sat(self):
        formula = Dqbf.build(
            [1, 2], [(3, [1]), (4, [2])],
            [[-3, 1], [3, -1], [-4, 2], [4, -2]],
        )
        assert solve_dpll_dqbf(formula).status == SAT

    def test_cross_dependency_unsat(self):
        formula = Dqbf.build([1, 2], [(3, [1])], [[-3, 2], [3, -2]])
        assert solve_dpll_dqbf(formula).status == UNSAT

    def test_empty_matrix(self):
        assert solve_dpll_dqbf(Dqbf.build([1], [(2, [1])], [])).status == SAT

    def test_empty_clause(self):
        assert solve_dpll_dqbf(Dqbf.build([1], [(2, [1])], [[]])).status == UNSAT

    def test_consistency_across_branches(self):
        """The crux of DQBF search: a Skolem entry fixed in one universal
        branch must persist into sibling branches agreeing on D_y.
        y() constant must equal x -> UNSAT."""
        formula = Dqbf.build([1], [(2, [])], [[-2, 1], [2, -1]])
        assert solve_dpll_dqbf(formula).status == UNSAT


class TestStatsAndLimits:
    def test_stats_counters(self):
        formula = Dqbf.build([1, 2], [(3, [1])], [[3, 1, 2], [-3, -1]])
        solver = DpllDqbfSolver()
        result = solver.solve(formula)
        assert result.solved
        assert result.stats["leaves_visited"] >= 1

    def test_backtracking_happens(self):
        # force a wrong first choice: y free at leaf 0 but constrained
        # only at later leaves
        formula = Dqbf.build(
            [1, 2], [(3, [])],
            [[3, 1, 2], [-3, -1, 2], [-3, 1, -2], [-3, -1, -2]],
        )
        solver = DpllDqbfSolver()
        result = solver.solve(formula)
        assert result.solved

    def test_timeout(self):
        from repro.pec.families import make_adder

        formula = make_adder(5, 2, buggy=False, seed=1).formula
        result = solve_dpll_dqbf(formula, Limits(time_limit=0.05))
        assert result.status == UNKNOWN
        assert result.failure is not None
        assert result.failure.resource == "time"

    def test_deep_universal_tree_no_recursion_error(self):
        """12 universals = 4096 leaves: must not hit the recursion limit."""
        universals = list(range(1, 13))
        formula = Dqbf.build(
            universals, [(13, universals)], [[13] + universals]
        )
        result = solve_dpll_dqbf(formula, Limits(time_limit=30))
        assert result.status == SAT


class TestAgainstOracle:
    @settings(max_examples=100, deadline=None)
    @given(dqbf_strategy(max_universals=3, max_existentials=3, max_clauses=8))
    def test_matches_expansion_oracle(self, formula):
        expected = SAT if expansion_solve(formula) else UNSAT
        assert solve_dpll_dqbf(formula.copy(), Limits(time_limit=30)).status == expected
