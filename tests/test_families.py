"""Tests for the PEC benchmark family generators."""

import pytest

from repro.core.hqs import solve_dqbf
from repro.core.result import Limits, SAT, UNSAT
from repro.pec.circuit import Circuit
from repro.pec.encode import brute_force_realizable
from repro.pec.families import (
    FAMILIES,
    bitcell_arbiter,
    black_box_free_cone,
    cut_black_boxes,
    cut_region_black_box,
    generate_family,
    inject_bug,
    lookahead_arbiter,
    make_adder,
    make_bitcell,
    make_c432,
    make_comp,
    make_lookahead,
    make_pec_xor,
    make_z4,
    output_function_differs,
    ripple_adder,
    xor_chain,
)


class TestSpecCircuits:
    def test_ripple_adder_semantics(self):
        circuit = ripple_adder(3)
        circuit.validate()
        for a in range(8):
            for b in range(8):
                values = {"cin": False}
                for i in range(3):
                    values[f"a{i}"] = bool((a >> i) & 1)
                    values[f"b{i}"] = bool((b >> i) & 1)
                out = circuit.simulate(values)
                total = a + b
                got = sum(int(out[f"s{i}"]) << i for i in range(3))
                got += int(out["cout"]) << 3
                assert got == total

    def test_bitcell_arbiter_grants_first_request(self):
        circuit = bitcell_arbiter(4)
        out = circuit.simulate({"r0": False, "r1": True, "r2": True, "r3": False})
        assert not out["gr0"] and out["gr1"] and not out["gr2"] and not out["gr3"]

    def test_lookahead_matches_bitcell_semantics(self):
        """Both arbiters implement fixed priority; they must agree."""
        import itertools

        lookahead = lookahead_arbiter(2, 3)
        flat = bitcell_arbiter(6)
        for values in itertools.product([False, True], repeat=6):
            assignment = {f"r{i}": v for i, v in enumerate(values)}
            out_a = lookahead.simulate(assignment)
            out_b = flat.simulate(assignment)
            for i in range(6):
                assert out_a[f"gr{i}"] == out_b[f"gr{i}"], (values, i)

    def test_xor_chain_parity(self):
        circuit = xor_chain(5)
        out = circuit.simulate({f"x{i}": i % 2 == 0 for i in range(5)})
        assert out["out"] == (3 % 2 == 1)


class TestCutting:
    def test_cut_preserves_existing_boxes(self):
        spec = ripple_adder(3)
        once = cut_black_boxes(spec, ["c1"])
        twice = cut_black_boxes(once, ["c2"], prefix="bb_more")
        assert len(twice.black_boxes) == 2

    def test_region_cut_interface(self):
        spec = ripple_adder(3)
        region = ["p1", "g1", "t1", "c2"]
        cut = cut_region_black_box(spec, region, "bbr")
        cut.validate()
        box = cut.black_boxes[0]
        assert set(box.inputs) <= {"a1", "b1", "c1"}
        assert "c2" in box.outputs and "s1" not in box.outputs

    def test_missing_gate_rejected(self):
        spec = ripple_adder(2)
        with pytest.raises(ValueError):
            cut_black_boxes(spec, ["nope"])

    def test_black_box_free_cone(self):
        spec = ripple_adder(3)
        cut = cut_black_boxes(spec, ["c2"])
        assert black_box_free_cone(cut, "s0")
        assert black_box_free_cone(cut, "s1")
        assert not black_box_free_cone(cut, "s2")  # reads c2


class TestBugInjection:
    def test_complement_bug_differs_everywhere(self):
        spec = xor_chain(3)
        bugged = inject_bug(spec, "out")
        for a, b, c in [(0, 0, 0), (1, 0, 1)]:
            values = {"x0": bool(a), "x1": bool(b), "x2": bool(c)}
            assert spec.simulate(values)["out"] != bugged.simulate(values)["out"]

    def test_subtle_bug_partial_difference(self):
        spec = ripple_adder(2)
        bugged = inject_bug(spec, "s0", subtle=True)  # xor -> or
        assert output_function_differs(spec, bugged, "s0")
        # agrees on the all-zero input (or(0,cin)=xor(0,cin))
        zero = {"a0": False, "a1": False, "b0": False, "b1": False, "cin": False}
        assert spec.simulate(zero)["s0"] == bugged.simulate(zero)["s0"]

    def test_missing_gate_rejected(self):
        with pytest.raises(ValueError):
            inject_bug(ripple_adder(2), "ghost")


class TestGenerators:
    @pytest.mark.parametrize(
        "make,args",
        [
            (make_adder, (3, 1)),
            (make_bitcell, (4, 1)),
            (make_lookahead, (2, 1)),
            (make_pec_xor, (4, 1)),
            (make_z4, (4, 1)),
            (make_comp, (4, 2)),
            (make_c432, (3, 3, 2)),
        ],
    )
    @pytest.mark.parametrize("buggy", [False, True])
    def test_expected_status_verified_by_hqs(self, make, args, buggy):
        instance = make(*args, buggy, 11)
        assert instance.expected is (not buggy)
        result = solve_dqbf(instance.formula.copy(), limits=Limits(time_limit=30))
        assert result.status == (SAT if instance.expected else UNSAT)

    def test_clean_instances_realizable_by_oracle(self):
        """Small clean instances double-checked against brute force."""
        instance = make_adder(3, 1, buggy=False, seed=5)
        assert brute_force_realizable(instance.spec, instance.impl)

    def test_bugged_instances_unrealizable_by_oracle(self):
        instance = make_bitcell(4, 1, buggy=True, seed=5)
        assert not brute_force_realizable(instance.spec, instance.impl, limit=1 << 24)

    def test_determinism(self):
        a = make_adder(4, 2, True, seed=9)
        b = make_adder(4, 2, True, seed=9)
        assert a.name == b.name
        assert a.formula.matrix.clauses == b.formula.matrix.clauses

    def test_generate_family_counts_and_mix(self):
        for family in FAMILIES:
            instances = generate_family(family, 6, scale=1.0, seed=4)
            assert len(instances) == 6
            assert all(inst.family == family for inst in instances)
            names = {inst.name for inst in instances}
            assert len(names) == 6  # unique names

    def test_generate_family_sat_fraction(self):
        instances = generate_family("adder", 30, scale=1.0, sat_fraction=1.0, seed=1)
        assert all(inst.expected for inst in instances)
        instances = generate_family("adder", 30, scale=1.0, sat_fraction=0.0, seed=1)
        assert not any(inst.expected for inst in instances)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_family("mystery", 1)

    def test_scale_increases_size(self):
        small = generate_family("adder", 3, scale=1.0, seed=2)
        large = generate_family("adder", 3, scale=2.0, seed=2)
        small_vars = sum(i.formula.matrix.num_vars for i in small)
        large_vars = sum(i.formula.matrix.num_vars for i in large)
        assert large_vars > small_vars


class TestMultiplierExtension:
    """The `mult` extension family (motivated by the paper's intro)."""

    def test_multiplier_semantics(self):
        import itertools

        from repro.pec.families import array_multiplier

        circuit = array_multiplier(3)
        circuit.validate()
        for a in range(8):
            for b in range(8):
                values = {}
                for i in range(3):
                    values[f"a{i}"] = bool((a >> i) & 1)
                    values[f"b{i}"] = bool((b >> i) & 1)
                out = circuit.simulate(values)
                got = sum(int(out[f"p{k}"]) << k for k in range(6))
                assert got == a * b, (a, b, got)

    @pytest.mark.parametrize("buggy", [False, True])
    def test_mult_instances_verified(self, buggy):
        from repro.pec.families import make_mult

        instance = make_mult(2, 1, buggy, seed=13)
        result = solve_dqbf(instance.formula.copy(), limits=Limits(time_limit=60))
        assert result.status == (SAT if instance.expected else UNSAT)

    def test_mult_in_generate_family(self):
        instances = generate_family("mult", 3, scale=1.0, seed=8)
        assert len(instances) == 3
        assert all(inst.family == "mult" for inst in instances)

    def test_extension_families_exported(self):
        from repro.pec import EXTENSION_FAMILIES

        assert "mult" in EXTENSION_FAMILIES
