"""Tests for the one-shot report generator."""

import pytest

from repro.experiments.report import generate_report, main
from repro.experiments.runner import BenchConfig


class TestReport:
    @pytest.mark.slow
    def test_report_contains_all_sections(self):
        config = BenchConfig(scale=1.0, count=1, timeout=5.0, node_limit=200000, seed=3)
        report = generate_report(config)
        assert "# Reproduction report" in report
        assert "## Table I" in report
        assert "## Fig. 4" in report
        assert "## In-text statistics" in report
        assert "Paper (1820 instances, 2h/8GB):" in report
        # measured table rendered for every family
        for family in ("adder", "bitcell", "lookahead", "pec_xor", "z4", "comp", "c432"):
            assert family in report

    def test_main_writes_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_COUNT", "1")
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "5")
        path = tmp_path / "report.md"
        assert main([str(path)]) == 0
        assert path.read_text().startswith("# Reproduction report")
