"""Tests for the gate-level circuit model."""

import itertools

import pytest

from repro.aig.graph import Aig
from repro.pec.circuit import BlackBox, Circuit, Gate


def mux_circuit() -> Circuit:
    c = Circuit("mux", ["s", "a", "b"], ["o"])
    c.add_gate("ns", "not", ["s"])
    c.add_gate("t0", "and", ["ns", "a"])
    c.add_gate("t1", "and", ["s", "b"])
    c.add_gate("o", "or", ["t0", "t1"])
    return c


class TestConstruction:
    def test_gate_kind_validation(self):
        c = Circuit("c", ["a"], ["o"])
        with pytest.raises(ValueError):
            c.add_gate("o", "nandy", ["a"])

    def test_not_gate_arity(self):
        with pytest.raises(ValueError):
            Gate("o", "not", ["a", "b"])

    def test_const_gates_take_no_inputs(self):
        with pytest.raises(ValueError):
            Gate("o", "const0", ["a"])

    def test_black_box_needs_outputs(self):
        with pytest.raises(ValueError):
            BlackBox("bb", ["a"], [])

    def test_double_driver_rejected(self):
        c = Circuit("c", ["a"], ["o"])
        c.add_gate("o", "buf", ["a"])
        c.add_gate("o", "not", ["a"])
        with pytest.raises(ValueError):
            c.validate()

    def test_undriven_input_rejected(self):
        c = Circuit("c", ["a"], ["o"])
        c.add_gate("o", "and", ["a", "ghost"])
        with pytest.raises(ValueError):
            c.validate()

    def test_undriven_output_rejected(self):
        c = Circuit("c", ["a"], ["o"])
        with pytest.raises(ValueError):
            c.validate()

    def test_cycle_rejected(self):
        c = Circuit("c", ["a"], ["o"])
        c.add_gate("x", "and", ["a", "y"])
        c.add_gate("y", "and", ["a", "x"])
        c.add_gate("o", "buf", ["x"])
        with pytest.raises(ValueError):
            c.validate()

    def test_copy_independent(self):
        c = mux_circuit()
        clone = c.copy("mux2")
        clone.add_gate("extra", "not", ["a"])
        assert len(c.gates) == 4
        assert clone.name == "mux2"


class TestSimulate:
    def test_mux_truth_table(self):
        c = mux_circuit()
        for s, a, b in itertools.product([False, True], repeat=3):
            out = c.simulate({"s": s, "a": a, "b": b})
            assert out["o"] == (b if s else a)

    @pytest.mark.parametrize(
        "kind,table",
        [
            ("and", lambda a, b: a and b),
            ("or", lambda a, b: a or b),
            ("xor", lambda a, b: a ^ b),
            ("xnor", lambda a, b: not (a ^ b)),
            ("nand", lambda a, b: not (a and b)),
            ("nor", lambda a, b: not (a or b)),
        ],
    )
    def test_binary_gates(self, kind, table):
        c = Circuit("g", ["a", "b"], ["o"])
        c.add_gate("o", kind, ["a", "b"])
        for a, b in itertools.product([False, True], repeat=2):
            assert c.simulate({"a": a, "b": b})["o"] == table(a, b)

    def test_constants(self):
        c = Circuit("k", ["a"], ["z", "one"])
        c.add_gate("z", "const0", [])
        c.add_gate("one", "const1", [])
        out = c.simulate({"a": False})
        assert out == {"z": False, "one": True}

    def test_black_box_simulation(self):
        c = Circuit("bb", ["a", "b"], ["o"])
        c.add_black_box("box", ["a", "b"], ["m"])
        c.add_gate("o", "not", ["m"])
        tables = {"m": {(False, False): False, (False, True): True,
                        (True, False): True, (True, True): False}}
        assert c.simulate({"a": True, "b": False}, tables)["o"] is False

    def test_black_box_without_tables_raises(self):
        c = Circuit("bb", ["a"], ["o"])
        c.add_black_box("box", ["a"], ["o"])
        with pytest.raises(ValueError):
            c.simulate({"a": True})


class TestToAig:
    def test_matches_simulation(self):
        c = mux_circuit()
        aig = Aig()
        edges = c.to_aig(aig, {"s": aig.var(1), "a": aig.var(2), "b": aig.var(3)})
        for s, a, b in itertools.product([False, True], repeat=3):
            sim = c.simulate({"s": s, "a": a, "b": b})["o"]
            val = aig.evaluate(edges["o"], {1: s, 2: a, 3: b})
            assert sim == val

    def test_all_gate_kinds_match_simulation(self):
        c = Circuit("all", ["a", "b", "c"], ["o"])
        c.add_gate("g1", "xor", ["a", "b", "c"])
        c.add_gate("g2", "xnor", ["a", "b"])
        c.add_gate("g3", "nand", ["g1", "g2"])
        c.add_gate("g4", "nor", ["g3", "c"])
        c.add_gate("g5", "const1", [])
        c.add_gate("o", "and", ["g4", "g5"])

        aig = Aig()
        inputs = {"a": aig.var(1), "b": aig.var(2), "c": aig.var(3)}
        edges = c.to_aig(aig, inputs)
        for a, b, cc in itertools.product([False, True], repeat=3):
            sim = c.simulate({"a": a, "b": b, "c": cc})["o"]
            from repro.aig.graph import FALSE, TRUE

            edge = edges["o"]
            val = edge == TRUE if edge in (TRUE, FALSE) else aig.evaluate(
                edge, {1: a, 2: b, 3: cc}
            )
            assert sim == val

    def test_black_box_outputs_must_be_supplied(self):
        c = Circuit("bb", ["a"], ["o"])
        c.add_black_box("box", ["a"], ["m"])
        c.add_gate("o", "buf", ["m"])
        aig = Aig()
        with pytest.raises(ValueError):
            c.to_aig(aig, {"a": aig.var(1)})

    def test_topological_order_handles_reverse_declaration(self):
        c = Circuit("rev", ["a"], ["o"])
        # gates declared out of order on purpose
        c.add_gate("o", "buf", ["m"])
        c.add_gate("m", "not", ["a"])
        order = [g.output for g in c.topological_order()]
        assert order.index("m") < order.index("o")
        assert c.simulate({"a": True})["o"] is False
