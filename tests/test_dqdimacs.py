"""Tests for the DQDIMACS reader/writer."""

import pytest
from hypothesis import given, settings

from repro.formula.dqbf import expansion_solve
from repro.formula.dqdimacs import (
    DqdimacsError,
    parse_dqdimacs,
    write_dqdimacs,
)

from conftest import dqbf_strategy

EXAMPLE = """\
c Example 1 of the paper
p cnf 4 2
a 1 2 0
d 3 1 0
d 4 2 0
3 4 1 0
-3 -4 2 0
"""


class TestParse:
    def test_example(self):
        formula = parse_dqdimacs(EXAMPLE)
        assert formula.prefix.universals == [1, 2]
        assert formula.prefix.dependencies(3) == frozenset([1])
        assert formula.prefix.dependencies(4) == frozenset([2])
        assert len(formula.matrix) == 2

    def test_e_line_inherits_universals(self):
        text = "p cnf 3 1\na 1 0\ne 2 0\na 3 0\n2 0\n"
        formula = parse_dqdimacs(text)
        assert formula.prefix.dependencies(2) == frozenset([1])
        assert formula.prefix.universals == [1, 3]

    def test_comments_and_blank_lines_skipped(self):
        text = "c hello\n\np cnf 1 1\nc mid\na 1 0\nc more\n1 -1 0\n"
        formula = parse_dqdimacs(text)
        assert formula.prefix.universals == [1]

    def test_empty_dependency_set(self):
        text = "p cnf 2 1\na 1 0\nd 2 0\n2 0\n"
        formula = parse_dqdimacs(text)
        assert formula.prefix.dependencies(2) == frozenset()

    @pytest.mark.parametrize(
        "text",
        [
            "a 1 0\np cnf 1 0\n",                 # prefix before problem line
            "p cnf 1 0\np cnf 1 0\n",              # duplicate problem line
            "p dnf 1 0\n",                         # wrong format tag
            "p cnf 2 1\na 1 0\n1 2\n",             # missing terminator
            "p cnf 2 1\na 5 0\n1 0\n",             # var exceeds declared max
            "p cnf 2 1\na -1 0\n1 0\n",            # negative var in prefix
            "p cnf 2 1\nd 0\n1 0\n",               # empty d line
            "p cnf 2 1\na 1 0\nd 2 9 0\n1 0\n",    # dep exceeds declared max
            "p cnf 1 0\n1 0\n",                    # more clauses than declared
        ],
    )
    def test_malformed_inputs_rejected(self, text):
        with pytest.raises(DqdimacsError):
            parse_dqdimacs(text)

    def test_dependency_on_existential_rejected(self):
        text = "p cnf 3 1\na 1 0\nd 2 1 0\nd 3 2 0\n3 0\n"
        with pytest.raises(DqdimacsError):
            parse_dqdimacs(text)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(dqbf_strategy())
    def test_write_parse_round_trip(self, formula):
        text = write_dqdimacs(formula)
        parsed = parse_dqdimacs(text)
        assert set(parsed.prefix.universals) == set(formula.prefix.universals)
        assert set(parsed.prefix.existentials) == set(formula.prefix.existentials)
        for y in formula.prefix.existentials:
            assert parsed.prefix.dependencies(y) == formula.prefix.dependencies(y)
        assert set(parsed.matrix.clauses) == set(formula.matrix.clauses)

    @settings(max_examples=30, deadline=None)
    @given(dqbf_strategy(max_universals=2, max_existentials=2, max_clauses=5))
    def test_round_trip_preserves_truth(self, formula):
        parsed = parse_dqdimacs(write_dqdimacs(formula))
        assert expansion_solve(parsed) == expansion_solve(formula)

    def test_file_round_trip(self, tmp_path):
        from repro.formula.dqdimacs import load_dqdimacs, save_dqdimacs

        formula = parse_dqdimacs(EXAMPLE)
        path = tmp_path / "example.dqdimacs"
        save_dqdimacs(formula, str(path))
        loaded = load_dqdimacs(str(path))
        assert loaded.prefix.universals == formula.prefix.universals
        assert set(loaded.matrix.clauses) == set(formula.matrix.clauses)
